"""OpenCL-style runtime model: buffers, command queue, events.

The paper measures its kernels with OpenCL *event-based* profiling
(Table 5's caption).  This module reproduces that runtime surface:

- :class:`Buffer` — device memory allocations charged against the
  device's capacity ("the data exchange between host and device is
  minimized by using the memory available on the device platform",
  §4.2),
- :class:`CommandQueue` — an in-order queue; every enqueued kernel
  yields an :class:`Event` with queued/start/end timestamps on the
  device's modelled clock,
- host↔device transfers with PCIe-class bandwidth accounting.

:class:`repro.hetero.runtime.InferenceEngine` computes kernel *times*;
this layer adds the execution *timeline* — queueing delays, transfer
overlap analysis, per-event profiles — which the queue-level tests and
the heterogeneous-inference example exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hetero.device import DeviceSpec

#: Host↔device transfer bandwidth (PCIe 3.0 x16 effective).
HOST_TRANSFER_BYTES_PER_S = 12.0e9

#: Device memory capacities (bytes) for the Table 4 platforms.
DEVICE_MEMORY_BYTES: Dict[str, float] = {
    "Nvidia V100 GPU": 16e9,
    "Nvidia P100 GPU": 16e9,
    "AMD Radeon Vega Frontier GPU": 16e9,
    "Nvidia T4 GPU": 16e9,
    "Intel Xeon Gold 6128 CPU": 192e9,
    "Intel Arria 10 GX 1150 FPGA": 8e9,
}


class DeviceMemoryError(RuntimeError):
    """Raised when allocations exceed the device's memory capacity."""


@dataclass
class Event:
    """OpenCL-style profiling event (seconds on the device clock)."""

    name: str
    queued_s: float
    start_s: float
    end_s: float
    kind: str = "kernel"

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def queue_delay_s(self) -> float:
        return self.start_s - self.queued_s


@dataclass
class Buffer:
    """A device allocation tracked by its context."""

    name: str
    nbytes: int
    _queue: "CommandQueue"
    released: bool = False

    def release(self) -> None:
        if not self.released:
            self._queue._release(self)
            self.released = True


class CommandQueue:
    """In-order command queue with event-based profiling.

    Kernel durations are supplied by the caller (typically from the
    calibrated :class:`~repro.hetero.perfmodel.PerfModel` rates);
    the queue owns ordering, timestamps, memory, and transfers.
    """

    def __init__(self, device: DeviceSpec, memory_bytes: Optional[float] = None):
        self.device = device
        self.capacity = float(
            memory_bytes if memory_bytes is not None
            else DEVICE_MEMORY_BYTES.get(device.name, 8e9)
        )
        self.allocated = 0
        self.peak_allocated = 0
        self.events: List[Event] = []
        self._clock = 0.0
        self._buffers: Dict[int, Buffer] = {}

    # -- memory ----------------------------------------------------------
    def alloc(self, name: str, nbytes: int) -> Buffer:
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self.allocated + nbytes > self.capacity:
            raise DeviceMemoryError(
                f"{self.device.name}: allocating {nbytes / 1e9:.2f} GB would exceed "
                f"capacity {self.capacity / 1e9:.1f} GB "
                f"({self.allocated / 1e9:.2f} GB in use)"
            )
        buf = Buffer(name, nbytes, self)
        self.allocated += nbytes
        self.peak_allocated = max(self.peak_allocated, self.allocated)
        self._buffers[id(buf)] = buf
        return buf

    def _release(self, buf: Buffer) -> None:
        if id(buf) in self._buffers:
            self.allocated -= buf.nbytes
            del self._buffers[id(buf)]

    # -- commands --------------------------------------------------------
    def _push(self, name: str, duration: float, kind: str) -> Event:
        queued = self._clock
        start = self._clock  # in-order queue: starts when previous ends
        end = start + duration
        self._clock = end
        ev = Event(name=name, queued_s=queued, start_s=start, end_s=end, kind=kind)
        self.events.append(ev)
        return ev

    def enqueue_kernel(self, name: str, duration_s: float) -> Event:
        """Enqueue a kernel whose modelled duration is known."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        launch = self.device.launch_overhead_us * 1e-6
        return self._push(name, duration_s + launch, "kernel")

    def enqueue_write(self, buf: Buffer, nbytes: Optional[int] = None) -> Event:
        """Host → device transfer."""
        n = buf.nbytes if nbytes is None else nbytes
        return self._push(f"write:{buf.name}", n / HOST_TRANSFER_BYTES_PER_S, "transfer")

    def enqueue_read(self, buf: Buffer, nbytes: Optional[int] = None) -> Event:
        """Device → host transfer."""
        n = buf.nbytes if nbytes is None else nbytes
        return self._push(f"read:{buf.name}", n / HOST_TRANSFER_BYTES_PER_S, "transfer")

    def finish(self) -> float:
        """Block until the queue drains; returns the device clock."""
        return self._clock

    # -- profiling -------------------------------------------------------
    def profile(self) -> Dict[str, float]:
        """Aggregate event durations by kind (Table 5-style accounting)."""
        out: Dict[str, float] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0.0) + ev.duration_s
        out["total"] = self._clock
        return out

    def kernel_time_by_prefix(self) -> Dict[str, float]:
        """Sum kernel event durations grouped by name prefix (before ':')."""
        out: Dict[str, float] = {}
        for ev in self.events:
            if ev.kind != "kernel":
                continue
            prefix = ev.name.split(":", 1)[0]
            out[prefix] = out.get(prefix, 0.0) + ev.duration_s
        return out


def transfer_fraction(queue: CommandQueue) -> float:
    """Fraction of the timeline spent in host↔device transfers.

    The §4.2 claim — device-resident intermediate buffers keep transfer
    overhead negligible — is checked against this number in the tests.
    """
    prof = queue.profile()
    total = prof.get("total", 0.0)
    return prof.get("transfer", 0.0) / total if total else 0.0
