"""Optimization flag set for the OpenCL kernels (§4.2).

Application-specific, architecture-aware, and FPGA-specific
optimizations compose into an :class:`OptimizationConfig`; the
performance model maps each flag to its effect on memory traffic,
effective bandwidth, or pipeline throughput (Table 7 / §4.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class OptimizationConfig:
    """Which §4.2 optimizations are active.

    Attributes
    ----------
    refactor_deconv:
        §4.2.1 inverse coefficient mapping (REF): gather instead of
        scatter deconvolution.
    prefetch:
        §4.2.2 memory prefetching of loop bounds/filter parameters (PF).
    loop_unroll:
        §4.2.2 unrolling of the multiply-add loop by factor 5 (LU).
    vectorize / compute_unit_replication / dedicated_kernels /
    runtime_reconfiguration:
        §4.2.3 FPGA-specific optimizations.
    """

    refactor_deconv: bool = False
    prefetch: bool = False
    loop_unroll: bool = False
    vectorize: bool = False
    compute_unit_replication: int = 1
    dedicated_kernels: bool = False
    runtime_reconfiguration: bool = False

    def __post_init__(self):
        if self.compute_unit_replication < 1:
            raise ValueError("compute-unit replication factor must be >= 1")

    # -- the Table 7 ablation ladder ------------------------------------
    @classmethod
    def baseline(cls) -> "OptimizationConfig":
        return cls()

    @classmethod
    def ref(cls) -> "OptimizationConfig":
        return cls(refactor_deconv=True)

    @classmethod
    def ref_pf(cls) -> "OptimizationConfig":
        return cls(refactor_deconv=True, prefetch=True)

    @classmethod
    def ref_pf_lu(cls) -> "OptimizationConfig":
        return cls(refactor_deconv=True, prefetch=True, loop_unroll=True)

    @classmethod
    def fpga_full(cls) -> "OptimizationConfig":
        """All §4.2.3 optimizations (the Table 4 FPGA configuration)."""
        return cls(
            refactor_deconv=True, prefetch=True, loop_unroll=True,
            vectorize=True, compute_unit_replication=2,
            dedicated_kernels=True, runtime_reconfiguration=True,
        )

    @classmethod
    def table7_ladder(cls) -> List["OptimizationConfig"]:
        return [cls.baseline(), cls.ref(), cls.ref_pf(), cls.ref_pf_lu()]

    @property
    def label(self) -> str:
        if self == OptimizationConfig.fpga_full():
            return "FPGA-full"
        parts = []
        if self.refactor_deconv:
            parts.append("REF")
        if self.prefetch:
            parts.append("PF")
        if self.loop_unroll:
            parts.append("LU")
        if self.vectorize:
            parts.append("VEC")
        if self.compute_unit_replication > 1:
            parts.append(f"CUx{self.compute_unit_replication}")
        if self.dedicated_kernels:
            parts.append("DED")
        if self.runtime_reconfiguration:
            parts.append("RECONF")
        return "Baseline" + ("".join(" + " + p for p in parts) if parts else "")
