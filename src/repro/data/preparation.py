"""Data preparation (§2.1).

Three operations the paper applies to harmonize its four sources:

1. retaining chest CT only (a no-op here: the generators emit CT),
2. removal of the circular reconstruction-FOV boundary present in
   BIMCV/MIDRC scans (Fig. 5),
3. keeping scans with ≥ 128 slices for isotropy (parametric here).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.data.phantom import HU_AIR


def add_circular_boundary(image: np.ndarray, radius_frac: float = 0.49,
                          value: float = -2048.0) -> np.ndarray:
    """Stamp the circular reconstruction FOV onto a slice (test helper).

    Scanners pad everything outside the reconstruction circle with a
    sentinel (often −2048); this reproduces that artifact so the removal
    path can be exercised.
    """
    n = image.shape[0]
    ys, xs = np.mgrid[0:n, 0:n]
    r = np.hypot(ys - (n - 1) / 2.0, xs - (n - 1) / 2.0)
    out = image.astype(np.float64).copy()
    out[r > radius_frac * n] = value
    return out


def detect_circular_boundary(image: np.ndarray, threshold: float = -1500.0) -> Optional[float]:
    """Detect a circular FOV boundary; returns its radius fraction or None.

    Looks for the sentinel band (values below any physical HU) arranged
    circularly around the image center.
    """
    below = image < threshold
    if not below.any():
        return None
    n = image.shape[0]
    ys, xs = np.mgrid[0 : image.shape[0], 0 : image.shape[1]]
    r = np.hypot(ys - (image.shape[0] - 1) / 2.0, xs - (image.shape[1] - 1) / 2.0)
    inside_r = r[~below]
    if len(inside_r) == 0:
        return 0.0
    return float(inside_r.max() / n)


def remove_circular_boundary(image: np.ndarray, threshold: float = -1500.0,
                             fill: float = HU_AIR) -> np.ndarray:
    """§2.1 / Fig. 5: replace the circular FOV sentinel region with air.

    Idempotent: images without a boundary are returned unchanged
    (as a copy).
    """
    out = np.asarray(image, dtype=np.float64).copy()
    out[out < threshold] = fill
    return out


def filter_min_slices(
    scans: Sequence[np.ndarray], min_slices: int = 128
) -> List[np.ndarray]:
    """§2.1: keep scans with at least ``min_slices`` 2D slices."""
    if min_slices < 1:
        raise ValueError("min_slices must be >= 1")
    return [s for s in scans if s.shape[0] >= min_slices]


def prepare_scan(
    volume: np.ndarray,
    min_slices: int = 128,
    boundary_threshold: float = -1500.0,
) -> Optional[np.ndarray]:
    """Full §2.1 preparation of one 3D scan.

    Returns the cleaned volume, or ``None`` when the scan fails the
    slice-count requirement.
    """
    if volume.ndim != 3:
        raise ValueError(f"expected (D, H, W) volume; got shape {volume.shape}")
    if volume.shape[0] < min_slices:
        return None
    return np.stack([remove_circular_boundary(s, boundary_threshold) for s in volume])
