"""Data preparation (§2.1).

Three operations the paper applies to harmonize its four sources:

1. retaining chest CT only (a no-op here: the generators emit CT),
2. removal of the circular reconstruction-FOV boundary present in
   BIMCV/MIDRC scans (Fig. 5),
3. keeping scans with ≥ 128 slices for isotropy (parametric here).
"""

from __future__ import annotations

from functools import partial
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.phantom import HU_AIR
from repro.parallel.pool import parallel_map, resolve_workers
from repro.parallel.seeding import spawn_seeds
from repro.parallel.shm import ShmArray, shm_scope


def add_circular_boundary(image: np.ndarray, radius_frac: float = 0.49,
                          value: float = -2048.0) -> np.ndarray:
    """Stamp the circular reconstruction FOV onto a slice (test helper).

    Scanners pad everything outside the reconstruction circle with a
    sentinel (often −2048); this reproduces that artifact so the removal
    path can be exercised.
    """
    n = image.shape[0]
    ys, xs = np.mgrid[0:n, 0:n]
    r = np.hypot(ys - (n - 1) / 2.0, xs - (n - 1) / 2.0)
    out = image.astype(np.float64).copy()
    out[r > radius_frac * n] = value
    return out


def detect_circular_boundary(image: np.ndarray, threshold: float = -1500.0) -> Optional[float]:
    """Detect a circular FOV boundary; returns its radius fraction or None.

    Looks for the sentinel band (values below any physical HU) arranged
    circularly around the image center.
    """
    below = image < threshold
    if not below.any():
        return None
    n = image.shape[0]
    ys, xs = np.mgrid[0 : image.shape[0], 0 : image.shape[1]]
    r = np.hypot(ys - (image.shape[0] - 1) / 2.0, xs - (image.shape[1] - 1) / 2.0)
    inside_r = r[~below]
    if len(inside_r) == 0:
        return 0.0
    return float(inside_r.max() / n)


def remove_circular_boundary(image: np.ndarray, threshold: float = -1500.0,
                             fill: float = HU_AIR) -> np.ndarray:
    """§2.1 / Fig. 5: replace the circular FOV sentinel region with air.

    Idempotent: images without a boundary are returned unchanged
    (as a copy).
    """
    out = np.asarray(image, dtype=np.float64).copy()
    out[out < threshold] = fill
    return out


def filter_min_slices(
    scans: Sequence[np.ndarray], min_slices: int = 128
) -> List[np.ndarray]:
    """§2.1: keep scans with at least ``min_slices`` 2D slices."""
    if min_slices < 1:
        raise ValueError("min_slices must be >= 1")
    return [s for s in scans if s.shape[0] >= min_slices]


def _clean_slice_into(z: int, src: ShmArray, dst: ShmArray,
                      threshold: float) -> int:
    """Fan-out work item: clean one slice of a shared volume in place."""
    dst.asarray()[z] = remove_circular_boundary(src.asarray()[z], threshold)
    return z


def prepare_scan(
    volume: np.ndarray,
    min_slices: int = 128,
    boundary_threshold: float = -1500.0,
    workers: Optional[int] = 1,
    bus=None,
) -> Optional[np.ndarray]:
    """Full §2.1 preparation of one 3D scan.

    Returns the cleaned volume, or ``None`` when the scan fails the
    slice-count requirement.  ``workers=N`` cleans slices across ``N``
    processes over shared memory; boundary removal is deterministic, so
    the result is identical for every worker count.
    """
    if volume.ndim != 3:
        raise ValueError(f"expected (D, H, W) volume; got shape {volume.shape}")
    if volume.shape[0] < min_slices:
        return None
    if resolve_workers(workers) <= 1:
        return np.stack([remove_circular_boundary(s, boundary_threshold) for s in volume])
    with shm_scope() as scope:
        src = scope.share(np.ascontiguousarray(volume, dtype=np.float64))
        dst = scope.create(volume.shape, np.float64)
        parallel_map(
            partial(_clean_slice_into, src=src, dst=dst, threshold=boundary_threshold),
            range(volume.shape[0]), workers=workers, bus=bus,
            source="repro.data.prepare")
        return dst.copy()


def _simulate_slice_into(
    item: Tuple[int, np.random.SeedSequence],
    src: ShmArray,
    full: ShmArray,
    low: ShmArray,
    geometry,
    blank_scan: float,
    pixel_size: float,
    filter_window: str,
) -> int:
    """Fan-out work item: §3.1.2 low-dose chain on one shared slice."""
    from repro.ct.sinogram import simulate_low_dose_pair

    z, seed = item
    full_z, low_z, _ = simulate_low_dose_pair(
        src.asarray()[z], geometry, blank_scan=blank_scan,
        pixel_size=pixel_size, filter_window=filter_window,
        rng=np.random.default_rng(seed),
    )
    full.asarray()[z] = full_z
    low.asarray()[z] = low_z
    return z


def _dose_fraction_slice_into(
    item: Tuple[int, np.random.SeedSequence],
    src: ShmArray,
    full: ShmArray,
    frac: ShmArray,
    geometry,
    full_blank_scan: float,
    dose_fraction: float,
    pixel_size: float,
    filter_window: str,
) -> int:
    """Fan-out work item: Mayo full/fractional-dose pair on one slice."""
    from repro.ct.sinogram import simulate_dose_fraction_pair

    z, seed = item
    full_z, frac_z = simulate_dose_fraction_pair(
        src.asarray()[z], geometry, full_blank_scan=full_blank_scan,
        dose_fraction=dose_fraction, pixel_size=pixel_size,
        filter_window=filter_window, rng=np.random.default_rng(seed),
    )
    full.asarray()[z] = full_z
    frac.asarray()[z] = frac_z
    return z


def simulate_low_dose_volume(
    volume_mu: np.ndarray,
    geometry,
    blank_scan: float = 1.0e6,
    pixel_size: float = 1.0,
    filter_window: str = "hann",
    seed: int = 0,
    workers: Optional[int] = 1,
    bus=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run :func:`repro.ct.simulate_low_dose_pair` on every slice of a scan.

    The volume-scale version of the §3.1.2 recipe — forward project,
    Poisson-corrupt, FBP-reconstruct, slice by slice — fanned across
    ``workers`` processes with the input and both reconstructions in
    shared memory.  Each slice draws from its own
    :class:`~numpy.random.SeedSequence` child of ``seed``, so outputs
    are bit-identical for every worker count.

    Returns ``(full_dose, low_dose)`` attenuation volumes of
    ``volume_mu``'s shape.
    """
    volume_mu = np.asarray(volume_mu, dtype=np.float64)
    if volume_mu.ndim != 3:
        raise ValueError(f"expected (D, H, W) volume; got shape {volume_mu.shape}")
    if volume_mu.shape[1] != volume_mu.shape[2]:
        raise ValueError("FBP reconstruction needs square slices")
    depth = volume_mu.shape[0]
    seeds = spawn_seeds(seed, depth)
    with shm_scope() as scope:
        src = scope.share(volume_mu)
        full = scope.create(volume_mu.shape, np.float64)
        low = scope.create(volume_mu.shape, np.float64)
        parallel_map(
            partial(_simulate_slice_into, src=src, full=full, low=low,
                    geometry=geometry, blank_scan=blank_scan,
                    pixel_size=pixel_size, filter_window=filter_window),
            list(enumerate(seeds)), workers=workers, bus=bus,
            source="repro.data.simulate")
        return full.copy(), low.copy()


def simulate_dose_fraction_volume(
    volume_mu: np.ndarray,
    geometry,
    full_blank_scan: float = 1.0e6,
    dose_fraction: float = 0.25,
    pixel_size: float = 1.0,
    filter_window: str = "hann",
    seed: int = 0,
    workers: Optional[int] = 1,
    bus=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Mayo-protocol (full, fractional) dose pairs for every slice of a scan.

    Volume-scale :func:`repro.ct.simulate_dose_fraction_pair` — both
    arms Poisson-noised, the second at ``dose_fraction`` of the photons
    (Table 1's full/quarter-dose archive) — with the same shared-memory
    fan-out and per-slice seeding as :func:`simulate_low_dose_volume`,
    so outputs are bit-identical for every worker count.
    """
    volume_mu = np.asarray(volume_mu, dtype=np.float64)
    if volume_mu.ndim != 3:
        raise ValueError(f"expected (D, H, W) volume; got shape {volume_mu.shape}")
    if volume_mu.shape[1] != volume_mu.shape[2]:
        raise ValueError("FBP reconstruction needs square slices")
    depth = volume_mu.shape[0]
    seeds = spawn_seeds(seed, depth)
    with shm_scope() as scope:
        src = scope.share(volume_mu)
        full = scope.create(volume_mu.shape, np.float64)
        frac = scope.create(volume_mu.shape, np.float64)
        parallel_map(
            partial(_dose_fraction_slice_into, src=src, full=full, frac=frac,
                    geometry=geometry, full_blank_scan=full_blank_scan,
                    dose_fraction=dose_fraction, pixel_size=pixel_size,
                    filter_window=filter_window),
            list(enumerate(seeds)), workers=workers, bus=bus,
            source="repro.data.simulate")
        return full.copy(), frac.copy()
