"""3D chest-CT volume phantom.

Stacks per-slice phantoms along z with anatomically plausible
continuity: a single patient configuration is drawn once, the lung
cross-section follows an ellipsoidal profile (small at apex and base,
maximal mid-thorax), and COVID lesions span several adjacent slices so
3D networks see genuinely volumetric signal.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.data.lesions import COVID_LESION_TYPES, add_lesion
from repro.data.phantom import ChestPhantomConfig, chest_slice, slice_masks

#: Lesion menus per disease (``disease`` argument of :func:`chest_volume`).
DISEASE_LESIONS = {
    "covid": list(COVID_LESION_TYPES),
    "pneumonia": ["diffuse_pneumonia"],
    "nodule": ["nodule"],
}


def _lung_profile(num_slices: int) -> np.ndarray:
    """Ellipsoidal lung-size profile along z, in (0.35, 1]."""
    z = np.linspace(-1.0, 1.0, num_slices)
    return 0.35 + 0.65 * np.sqrt(np.clip(1.0 - z**2, 0.0, None))


def chest_volume(
    size: int = 64,
    num_slices: int = 32,
    covid: bool = False,
    num_lesions: Optional[int] = None,
    lesion_kinds: Optional[List[str]] = None,
    disease: Optional[str] = None,
    rng=None,
    config: Optional[ChestPhantomConfig] = None,
    return_lesion_mask: bool = False,
):
    """Generate one 3D chest CT scan in HU, shape (num_slices, size, size).

    Parameters
    ----------
    covid:
        When true, insert ``num_lesions`` volumetric lesions (default
        2-5, randomly typed from ``lesion_kinds``) spanning ~20-40% of
        the slices each.  Shorthand for ``disease='covid'``.
    disease:
        ``'covid'``, ``'pneumonia'``, or ``'nodule'`` — selects the
        lesion menu (see :data:`DISEASE_LESIONS`); the §7 "other
        maladies" extension.  Overrides ``covid``/``lesion_kinds``.
    return_lesion_mask:
        Also return a boolean per-voxel mask of inserted abnormality.
    """
    rng = rng or np.random.default_rng(0)
    config = config or ChestPhantomConfig(size=size)
    if config.size != size:
        raise ValueError(f"config.size {config.size} != size {size}")
    if disease is not None:
        if disease not in DISEASE_LESIONS:
            raise KeyError(f"unknown disease {disease!r}; choose from {sorted(DISEASE_LESIONS)}")
        covid = True  # "diseased": insert lesions from the menu below
        lesion_kinds = DISEASE_LESIONS[disease]
    # One patient: freeze anatomy with a dedicated seed, vary per slice
    # only through the lung profile and additive texture noise.
    anatomy_seed = int(rng.integers(0, 2**31))
    profile = _lung_profile(num_slices)

    volume = np.empty((num_slices, size, size))
    lung_masks = []
    for z in range(num_slices):
        slice_rng = np.random.default_rng(anatomy_seed)  # same anatomy...
        img, masks = chest_slice(config, slice_rng, lung_scale=profile[z], return_masks=True)
        texture_rng = np.random.default_rng(anatomy_seed + 1000 + z)
        img = img + texture_rng.normal(0.0, 6.0, size=img.shape) * masks["lungs"]
        volume[z] = img
        lung_masks.append(masks["lungs"])

    lesion_mask = np.zeros_like(volume, dtype=bool)
    if covid:
        kinds = lesion_kinds or list(COVID_LESION_TYPES)
        n_lesions = num_lesions if num_lesions is not None else int(rng.integers(2, 6))
        for _ in range(n_lesions):
            kind = kinds[rng.integers(0, len(kinds))]
            extent = max(2, int(num_slices * rng.uniform(0.2, 0.4)))
            z0 = int(rng.integers(0, max(1, num_slices - extent)))
            lesion_rng = np.random.default_rng(int(rng.integers(0, 2**31)))
            # Reuse one lesion seed across its slices so the footprint is
            # coherent in 3D; taper intensity toward the lesion's poles.
            state = lesion_rng.bit_generator.state
            for dz in range(extent):
                z = z0 + dz
                if not lung_masks[z].any():
                    continue
                lesion_rng.bit_generator.state = state
                before = volume[z]
                taper = np.sin(np.pi * (dz + 0.5) / extent)
                if kind == "ggo":
                    after = add_lesion(before, lung_masks[z], kind, rng=lesion_rng,
                                       intensity=float(taper))
                else:
                    after = add_lesion(before, lung_masks[z], kind, rng=lesion_rng)
                    after = before + (after - before) * taper
                lesion_mask[z] |= np.abs(after - before) > 20.0
                volume[z] = after
    if return_lesion_mask:
        return volume, lesion_mask
    return volume


def lung_mask_volume(volume_shape: Tuple[int, int, int], config: ChestPhantomConfig,
                     anatomy_seed: int) -> np.ndarray:
    """Recompute the per-slice lung masks for a generated volume."""
    num_slices, size, _ = volume_shape
    profile = _lung_profile(num_slices)
    masks = np.empty(volume_shape, dtype=bool)
    for z in range(num_slices):
        slice_rng = np.random.default_rng(anatomy_seed)
        masks[z] = slice_masks(config, slice_rng, lung_scale=profile[z])["lungs"]
    return masks
