"""Procedural 2D chest phantom in Hounsfield units.

Generates axial chest slices with randomized anatomy: an elliptical
thorax of soft tissue, two air-filled lungs, trachea, heart, a spine
and rib cross-sections of bone, and pulmonary vasculature rendered as
bright dots/branches inside the lungs.  Values are standard tissue HU
so the slices flow directly into the CT physics chain via
:func:`repro.ct.hounsfield.hu_to_mu`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from scipy.ndimage import gaussian_filter

# Tissue HU values (approximate clinical means).
HU_AIR = -1000.0
HU_LUNG = -860.0
HU_SOFT = 40.0
HU_HEART = 30.0
HU_BONE = 700.0
HU_VESSEL = 30.0


@dataclass(frozen=True)
class ChestPhantomConfig:
    """Anatomical randomization ranges for one patient."""

    size: int = 128
    body_rx: float = 0.44       # body half-axes as fraction of image size
    body_ry: float = 0.34
    lung_rx: float = 0.16
    lung_ry: float = 0.22
    lung_offset_x: float = 0.20
    heart_r: float = 0.10
    spine_r: float = 0.055
    vessel_count: int = 24
    jitter: float = 0.08        # relative randomization of each quantity
    smooth_sigma: float = 0.6   # final smoothing in pixels


def _ellipse(ys, xs, cy, cx, ry, rx, angle: float = 0.0) -> np.ndarray:
    """Boolean mask of a rotated ellipse."""
    dy, dx = ys - cy, xs - cx
    if angle:
        c, s = np.cos(angle), np.sin(angle)
        dx, dy = c * dx + s * dy, -s * dx + c * dy
    return (dx / rx) ** 2 + (dy / ry) ** 2 <= 1.0


def slice_masks(
    config: ChestPhantomConfig = ChestPhantomConfig(),
    rng=None,
    lung_scale: float = 1.0,
) -> Dict[str, np.ndarray]:
    """Anatomical masks for one slice.

    ``lung_scale`` shrinks the lungs (used by the 3D stack near the
    apex/base).  Returns masks: body, lungs, left_lung, right_lung,
    heart, spine, ribs, trachea.
    """
    rng = rng or np.random.default_rng(0)
    n = config.size
    ys, xs = np.mgrid[0:n, 0:n].astype(np.float64)
    cy, cx = n / 2.0, n / 2.0

    def j(v: float) -> float:
        return v * (1.0 + config.jitter * rng.uniform(-1.0, 1.0))

    body = _ellipse(ys, xs, cy, cx, j(config.body_ry) * n, j(config.body_rx) * n)
    lungs = np.zeros((n, n), dtype=bool)
    sides = {}
    lr_x = j(config.lung_rx) * n * lung_scale
    lr_y = j(config.lung_ry) * n * lung_scale
    for name, sign in (("left_lung", -1.0), ("right_lung", 1.0)):
        lcx = cx + sign * j(config.lung_offset_x) * n
        lcy = cy + 0.02 * n * rng.uniform(-1, 1)
        tilt = sign * rng.uniform(0.05, 0.25)
        m = _ellipse(ys, xs, lcy, lcx, lr_y, lr_x, angle=tilt) & body
        sides[name] = m
        lungs |= m
    heart = _ellipse(ys, xs, cy + 0.05 * n, cx - 0.04 * n,
                     j(config.heart_r) * n, j(config.heart_r) * 1.15 * n) & body & ~lungs
    spine = _ellipse(ys, xs, cy + j(config.body_ry) * n * 0.62, cx,
                     j(config.spine_r) * n, j(config.spine_r) * n) & body
    # Rib cross-sections: short bone arcs along the body boundary.
    ribs = np.zeros((n, n), dtype=bool)
    for k in range(8):
        theta = np.pi * (k + 0.5) / 8.0 * 2.0 + rng.uniform(-0.1, 0.1)
        rcx = cx + 0.95 * j(config.body_rx) * n * np.cos(theta)
        rcy = cy + 0.95 * j(config.body_ry) * n * np.sin(theta)
        ribs |= _ellipse(ys, xs, rcy, rcx, 0.016 * n, 0.016 * n)
    ribs &= body & ~lungs
    trachea = np.zeros((n, n), dtype=bool)
    if lung_scale > 0.85:  # present near the carina only
        trachea = _ellipse(ys, xs, cy - 0.12 * n, cx, 0.028 * n, 0.028 * n) & body
    return {
        "body": body, "lungs": lungs, "left_lung": sides["left_lung"],
        "right_lung": sides["right_lung"], "heart": heart, "spine": spine,
        "ribs": ribs, "trachea": trachea,
    }


def chest_slice(
    config: ChestPhantomConfig = ChestPhantomConfig(),
    rng=None,
    lung_scale: float = 1.0,
    return_masks: bool = False,
):
    """Render one chest slice in HU.

    Returns the (size, size) HU image, or ``(image, masks)`` when
    ``return_masks`` is set.
    """
    rng = rng or np.random.default_rng(0)
    masks = slice_masks(config, rng, lung_scale)
    n = config.size
    img = np.full((n, n), HU_AIR)
    img[masks["body"]] = HU_SOFT + rng.normal(0.0, 4.0)
    img[masks["lungs"]] = HU_LUNG + rng.normal(0.0, 10.0)
    img[masks["heart"]] = HU_HEART + rng.normal(0.0, 4.0)
    img[masks["spine"]] = HU_BONE
    img[masks["ribs"]] = HU_BONE * rng.uniform(0.75, 1.0)
    img[masks["trachea"]] = HU_AIR

    # Pulmonary vasculature: bright points of random caliber in lungs.
    lung_idx = np.argwhere(masks["lungs"])
    if len(lung_idx):
        count = max(1, int(config.vessel_count * (n / 128.0) ** 2))
        picks = lung_idx[rng.integers(0, len(lung_idx), size=count)]
        ys, xs = np.mgrid[0:n, 0:n]
        for (vy, vx) in picks:
            rad = rng.uniform(0.4, 1.8) * n / 128.0
            spot = (xs - vx) ** 2 + (ys - vy) ** 2 <= rad**2
            img[spot & masks["lungs"]] = HU_VESSEL + rng.normal(0, 10)

    # Fine parenchymal texture + smoothing for soft boundaries.
    img[masks["lungs"]] += rng.normal(0.0, 25.0, size=int(masks["lungs"].sum()))
    img = gaussian_filter(img, config.smooth_sigma)
    if return_masks:
        return img, masks
    return img
