"""Synthetic dataset stand-ins for the four Table 1 sources.

Each factory mirrors a clinical archive's *role* in the paper:

- :func:`mayo_clinic` — healthy scans with projection data at full and
  quarter dose (the enhancement training source),
- :func:`bimcv` — COVID-positive CT (also the basis of the simulated
  low-dose set, §3.1.2),
- :func:`midrc` — COVID-positive CT (classification positives),
- :func:`lidc` — healthy CT (classification negatives).

Scan counts default to small CPU-friendly numbers; pass
``num_scans=None`` to use the paper's full Table 1 counts.  Generation
is lazy — a :class:`SyntheticSource` materializes scans on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.ct.geometry import FanBeamGeometry, paper_geometry
from repro.ct.hounsfield import hu_to_mu, mu_to_hu, normalize_unit
from repro.ct.noise import PAPER_BLANK_SCAN
from repro.ct.sinogram import simulate_low_dose_pair
from repro.data.phantom import ChestPhantomConfig, chest_slice
from repro.data.phantom3d import chest_volume
from repro.data.registry import DATA_SOURCES
from repro.nn.data import Dataset
from repro.parallel.pool import parallel_map
from repro.parallel.seeding import derive_item_seeds
from repro.parallel.shm import ShmArray, shm_scope


@dataclass
class SyntheticSource:
    """A lazily generated stand-in for one clinical archive."""

    key: str
    num_scans: int
    covid_positive: bool
    size: int = 64
    num_slices: int = 32
    seed: int = 0

    @property
    def info(self):
        return DATA_SOURCES[self.key]

    def scan(self, index: int) -> np.ndarray:
        """Materialize scan ``index`` as a (D, H, W) HU volume."""
        if not 0 <= index < self.num_scans:
            raise IndexError(f"scan index {index} out of range [0, {self.num_scans})")
        rng = np.random.default_rng((self.seed, hash(self.key) & 0xFFFF, index))
        return chest_volume(
            size=self.size, num_slices=self.num_slices,
            covid=self.covid_positive, rng=rng,
        )

    def scans(self) -> List[np.ndarray]:
        return [self.scan(i) for i in range(self.num_scans)]

    def labels(self) -> np.ndarray:
        return np.full(self.num_scans, int(self.covid_positive))


def _make_source(key: str, num_scans: Optional[int], default: int, **kw) -> SyntheticSource:
    info = DATA_SOURCES[key]
    n = info.num_scans if num_scans is None else num_scans
    if num_scans is not None and num_scans < 1:
        raise ValueError("num_scans must be >= 1")
    return SyntheticSource(key=key, num_scans=n, covid_positive=info.covid_positive, **kw)


def mayo_clinic(num_scans: Optional[int] = 8, **kw) -> SyntheticSource:
    """Healthy scans with full/quarter-dose projection data."""
    return _make_source("mayo", num_scans, 8, **kw)


def bimcv(num_scans: Optional[int] = 8, **kw) -> SyntheticSource:
    """COVID-19 positive CT (Valencia)."""
    return _make_source("bimcv", num_scans, 34, **kw)


def midrc(num_scans: Optional[int] = 8, **kw) -> SyntheticSource:
    """COVID-19 positive CT (RSNA MIDRC)."""
    return _make_source("midrc", num_scans, 229, **kw)


def lidc(num_scans: Optional[int] = 8, **kw) -> SyntheticSource:
    """Healthy chest CT (LIDC)."""
    return _make_source("lidc", num_scans, 1301, **kw)


# ---------------------------------------------------------------------------
# Enhancement pairs (low-dose / full-dose), §3.1.2
# ---------------------------------------------------------------------------
def _render_enhancement_pair(
    item: Tuple[int, int],
    config: ChestPhantomConfig,
    geometry: FanBeamGeometry,
    blank_scan: float,
    pixel_size: float,
    covid_fraction: float,
    physics: bool,
    lows: ShmArray,
    fulls: ShmArray,
) -> int:
    """Simulate one (low, full) pair into the shared output arrays.

    One work item of the dataset-simulation fan-out.  All randomness
    comes from the per-item ``seed``, so the result is independent of
    which process runs it and of how items are chunked.
    """
    i, seed = item
    size = config.size
    slice_rng = np.random.default_rng(seed)
    img_hu, masks = chest_slice(config, slice_rng, return_masks=True)
    if slice_rng.random() < covid_fraction and masks["lungs"].any():
        from repro.data.lesions import add_lesion

        img_hu = add_lesion(img_hu, masks["lungs"], "ggo", rng=slice_rng)
    mu = hu_to_mu(img_hu)
    if physics:
        full_mu, low_mu, _ = simulate_low_dose_pair(
            mu, geometry, blank_scan=blank_scan, pixel_size=pixel_size, rng=slice_rng,
        )
        full_hu = mu_to_hu(full_mu)
        low_hu = mu_to_hu(low_mu)
    else:
        full_hu = img_hu
        # Image-space surrogate: white noise shaped by a radial
        # high-pass (the statistics FBP imparts to Poisson noise).
        noise = slice_rng.normal(0.0, 1.0, size=(size, size))
        f = np.fft.fft2(noise)
        fy = np.fft.fftfreq(size)[:, None]
        fx = np.fft.fftfreq(size)[None, :]
        shaped = np.real(np.fft.ifft2(f * np.sqrt(np.hypot(fy, fx))))
        shaped /= shaped.std() + 1e-12
        sigma_hu = 80.0 * np.sqrt(PAPER_BLANK_SCAN / blank_scan) / 10.0
        low_hu = img_hu + shaped * sigma_hu
    fulls.asarray()[i, 0] = normalize_unit(full_hu)
    lows.asarray()[i, 0] = normalize_unit(low_hu)
    return i


def make_enhancement_pairs(
    num_pairs: int,
    size: int = 32,
    blank_scan: float = 1.0e4,
    geometry: Optional[FanBeamGeometry] = None,
    covid_fraction: float = 0.5,
    physics: bool = True,
    rng=None,
    workers: Optional[int] = 1,
    bus=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build (low_dose, full_dose) slice pairs normalized to [0, 1].

    ``physics=True`` runs the complete §3.1.2 chain per slice (Siddon
    forward projection → Poisson counts at ``blank_scan`` photons →
    fan-beam FBP); ``physics=False`` is a fast surrogate that corrupts
    the image with FBP-shaped correlated noise directly in image space,
    for tests that need many pairs cheaply.

    ``workers=N`` fans the per-slice simulations across ``N`` processes
    (:mod:`repro.parallel`), the pair arrays living in shared memory so
    nothing is pickled.  The per-item seeds are drawn from ``rng`` up
    front exactly as the serial loop draws them, so the output is
    **bit-identical** for every worker count — including the historical
    ``workers=1`` path.  Pass ``bus`` (an
    :class:`~repro.telemetry.EventBus`) to record chunk spans.

    Returns arrays of shape (num_pairs, 1, size, size).
    """
    rng = rng or np.random.default_rng(0)
    if num_pairs < 1:
        raise ValueError("num_pairs must be >= 1")
    geometry = geometry or paper_geometry(scale=max(0.05, size / 512.0))
    # A chest spans ~350 mm regardless of grid resolution; physical
    # pixel size (not grid size) sets the attenuation path lengths and
    # hence the photon statistics.
    pixel_size = 350.0 / size
    config = ChestPhantomConfig(size=size, vessel_count=10)
    seeds = derive_item_seeds(rng, num_pairs)
    with shm_scope() as scope:
        lows = scope.create((num_pairs, 1, size, size), np.float64)
        fulls = scope.create((num_pairs, 1, size, size), np.float64)
        render = partial(
            _render_enhancement_pair,
            config=config, geometry=geometry, blank_scan=blank_scan,
            pixel_size=pixel_size, covid_fraction=covid_fraction,
            physics=physics, lows=lows, fulls=fulls,
        )
        parallel_map(render, list(enumerate(seeds)), workers=workers,
                     bus=bus, source="repro.data.simulate")
        return lows.copy(), fulls.copy()


class EnhancementDataset(Dataset):
    """Paired low/full-dose dataset for training DDnet."""

    def __init__(self, lows: np.ndarray, fulls: np.ndarray):
        if lows.shape != fulls.shape or lows.ndim != 4:
            raise ValueError("expected matching (N, 1, H, W) arrays")
        self.lows = lows
        self.fulls = fulls

    @classmethod
    def generate(cls, num_pairs: int, **kw) -> "EnhancementDataset":
        return cls(*make_enhancement_pairs(num_pairs, **kw))

    def __len__(self) -> int:
        return len(self.lows)

    def __getitem__(self, idx: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.lows[idx], self.fulls[idx]


def fbp_shaped_noise(shape: Tuple[int, int], rng) -> np.ndarray:
    """Unit-variance noise with FBP statistics (radially high-pass).

    Poisson projection noise pushed through the ramp filter of FBP is
    spatially correlated with an ~|f| spectrum; this samples that field
    directly in image space for the fast (non-physics) degradation path.
    """
    size_y, size_x = shape
    noise = rng.normal(0.0, 1.0, size=shape)
    f = np.fft.fft2(noise)
    fy = np.fft.fftfreq(size_y)[:, None]
    fx = np.fft.fftfreq(size_x)[None, :]
    shaped = np.real(np.fft.ifft2(f * np.sqrt(np.hypot(fy, fx))))
    return shaped / (shaped.std() + 1e-12)


def add_lowdose_noise_hu(volume_hu: np.ndarray, sigma_hu: float = 80.0, rng=None) -> np.ndarray:
    """Degrade a (D, H, W) HU volume with low-dose FBP-shaped noise.

    The image-space surrogate for running every slice through the full
    §3.1.2 projection → Poisson → FBP chain; used where many volumes
    must be degraded cheaply (e.g. the Fig. 13 evaluation arms).
    """
    if volume_hu.ndim != 3:
        raise ValueError(f"expected (D, H, W); got shape {volume_hu.shape}")
    rng = rng or np.random.default_rng(0)
    out = volume_hu.astype(np.float64).copy()
    for z in range(out.shape[0]):
        out[z] += sigma_hu * fbp_shaped_noise(out.shape[1:], rng)
    return out


# ---------------------------------------------------------------------------
# Classification volumes (positive/negative 3D scans), §3.3.2
# ---------------------------------------------------------------------------
def make_classification_volumes(
    num_positive: int,
    num_negative: int,
    size: int = 32,
    num_slices: int = 16,
    rng=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Labeled 3D volumes: (volumes (N, 1, D, H, W) in HU, labels (N,)).

    Positives draw from the BIMCV/MIDRC-style COVID generator, negatives
    from the LIDC-style healthy generator, matching §3.3.2.
    """
    rng = rng or np.random.default_rng(0)
    n = num_positive + num_negative
    if n < 1:
        raise ValueError("need at least one volume")
    volumes = np.empty((n, 1, num_slices, size, size))
    labels = np.concatenate([np.ones(num_positive), np.zeros(num_negative)]).astype(int)
    for i in range(n):
        vol_rng = np.random.default_rng(rng.integers(0, 2**31))
        volumes[i, 0] = chest_volume(
            size=size, num_slices=num_slices, covid=bool(labels[i]), rng=vol_rng,
        )
    order = rng.permutation(n)
    return volumes[order], labels[order]


class ClassificationDataset(Dataset):
    """Labeled volume dataset with optional §3.3.1 augmentation."""

    def __init__(
        self,
        volumes: np.ndarray,
        labels: np.ndarray,
        transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        normalize: bool = True,
    ):
        if len(volumes) != len(labels):
            raise ValueError("volumes and labels must align")
        self.volumes = volumes
        self.labels = np.asarray(labels, dtype=np.float64)
        self.transform = transform
        self.normalize = normalize

    @classmethod
    def generate(cls, num_positive: int, num_negative: int, **kw) -> "ClassificationDataset":
        transform = kw.pop("transform", None)
        vols, labels = make_classification_volumes(num_positive, num_negative, **kw)
        return cls(vols, labels, transform=transform)

    def __len__(self) -> int:
        return len(self.volumes)

    def __getitem__(self, idx: int) -> Tuple[np.ndarray, np.ndarray]:
        vol = self.volumes[idx]
        if self.normalize:
            # Scale HU into roughly unit range for stable optimization;
            # Classification AI keeps the full HU dynamic (§3.3.1), so
            # this is a pure affine rescale, not a window clip.
            vol = vol / 1000.0
        if self.transform is not None:
            vol = self.transform(vol)
        return vol, np.float64(self.labels[idx])
