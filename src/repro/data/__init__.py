"""Synthetic chest-CT data substrate.

The paper trains on four access-gated clinical archives (Table 1).
This subpackage provides procedurally generated stand-ins with the same
roles and the same preparation issues:

- :mod:`~repro.data.phantom` / :mod:`~repro.data.phantom3d` —
  parametric 2D slices and 3D volumes of a chest phantom (body, lungs,
  airway, heart, spine/ribs, vasculature),
- :mod:`~repro.data.lesions` — the COVID-19 radiological hallmarks of
  Fig. 1 (ground-glass opacity, consolidation, crazy paving, reversed
  halo, linear opacities),
- :mod:`~repro.data.datasets` — the four dataset stand-ins plus ready
  enhancement / classification dataset builders,
- :mod:`~repro.data.preparation` — §2.1 data preparation: circular
  FOV-boundary removal (Fig. 5) and minimum-slice-count filtering,
- :mod:`~repro.data.registry` — the Table 1 source inventory.
"""

from repro.data.phantom import ChestPhantomConfig, chest_slice, slice_masks
from repro.data.phantom3d import DISEASE_LESIONS, chest_volume
from repro.data.lesions import (
    COVID_LESION_TYPES,
    LESION_TYPES,
    add_lesion,
    consolidation,
    crazy_paving,
    diffuse_pneumonia,
    ground_glass_opacity,
    linear_opacity,
    nodule,
    reversed_halo,
)
from repro.data.datasets import (
    ClassificationDataset,
    EnhancementDataset,
    SyntheticSource,
    bimcv,
    lidc,
    make_classification_volumes,
    make_enhancement_pairs,
    mayo_clinic,
    midrc,
)
from repro.data.preparation import (
    detect_circular_boundary,
    filter_min_slices,
    prepare_scan,
    remove_circular_boundary,
    simulate_dose_fraction_volume,
    simulate_low_dose_volume,
)
from repro.data.registry import DATA_SOURCES, DataSourceInfo, data_source_table

__all__ = [
    "ChestPhantomConfig", "chest_slice", "slice_masks", "chest_volume",
    "LESION_TYPES", "COVID_LESION_TYPES", "DISEASE_LESIONS", "add_lesion",
    "ground_glass_opacity", "consolidation", "crazy_paving", "reversed_halo",
    "linear_opacity", "diffuse_pneumonia", "nodule",
    "SyntheticSource", "mayo_clinic", "bimcv", "midrc", "lidc",
    "EnhancementDataset", "ClassificationDataset",
    "make_enhancement_pairs", "make_classification_volumes",
    "remove_circular_boundary", "detect_circular_boundary",
    "filter_min_slices", "prepare_scan", "simulate_dose_fraction_volume",
    "simulate_low_dose_volume",
    "DATA_SOURCES", "DataSourceInfo", "data_source_table",
]
