"""COVID-19 radiological abnormality models (paper Fig. 1).

Each lesion generator raises lung parenchyma HU inside a shaped
footprint, reproducing the qualitative appearance radiologists key on:

- **ground-glass opacity (GGO)**: hazy partial opacification
  (≈ −700 → −300 HU) with soft edges, typically peripheral,
- **consolidation**: dense, near-soft-tissue opacification,
- **crazy paving**: GGO with a superimposed reticular grid,
- **reversed halo**: a ring of consolidation around central GGO,
- **linear opacity**: thin band-like density.

All generators mutate a copy of the HU slice only inside the provided
lung mask, so anatomy outside the lungs is untouched.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np
from scipy.ndimage import distance_transform_edt, gaussian_filter

HU_GGO = -350.0
HU_CONSOLIDATION = 20.0


def _peripheral_center(lung_mask: np.ndarray, rng, peripheral: bool = True) -> Tuple[int, int]:
    """Pick a lesion center, preferring subpleural (peripheral) sites.

    COVID lesions are predominantly peripheral — the classifier can
    exploit that prior, so the generator reproduces it.
    """
    idx = np.argwhere(lung_mask)
    if len(idx) == 0:
        raise ValueError("empty lung mask")
    if peripheral:
        dist = distance_transform_edt(lung_mask)
        vals = dist[idx[:, 0], idx[:, 1]]
        band = vals <= max(2.0, np.percentile(vals, 40))
        idx = idx[band] if band.any() else idx
    cy, cx = idx[rng.integers(0, len(idx))]
    return int(cy), int(cx)


def _blob(shape, cy, cx, radius, rng, fuzz: float = 2.0) -> np.ndarray:
    """Soft irregular footprint in [0, 1] around (cy, cx)."""
    ys, xs = np.mgrid[0 : shape[0], 0 : shape[1]].astype(np.float64)
    r = np.hypot(ys - cy, xs - cx)
    # Irregular boundary via random low-frequency angular modulation.
    theta = np.arctan2(ys - cy, xs - cx)
    wobble = np.zeros_like(theta)
    for k in range(2, 5):
        wobble += rng.uniform(-0.25, 0.25) * np.cos(k * theta + rng.uniform(0, 2 * np.pi))
    eff = radius * (1.0 + wobble)
    footprint = np.clip((eff - r) / fuzz + 0.5, 0.0, 1.0)
    return gaussian_filter(footprint, fuzz * 0.5)


def ground_glass_opacity(
    image: np.ndarray, lung_mask: np.ndarray, rng=None,
    radius: Optional[float] = None, intensity: float = 1.0,
) -> np.ndarray:
    """Insert one GGO; returns a new image."""
    rng = rng or np.random.default_rng(0)
    out = image.astype(np.float64).copy()
    cy, cx = _peripheral_center(lung_mask, rng)
    radius = radius or rng.uniform(0.06, 0.14) * image.shape[0]
    alpha = _blob(image.shape, cy, cx, radius, rng) * lung_mask * intensity
    out += alpha * (HU_GGO - out) * 0.85  # partial opacification: haze
    return out


def consolidation(
    image: np.ndarray, lung_mask: np.ndarray, rng=None,
    radius: Optional[float] = None,
) -> np.ndarray:
    """Insert a dense consolidation; returns a new image."""
    rng = rng or np.random.default_rng(0)
    out = image.astype(np.float64).copy()
    cy, cx = _peripheral_center(lung_mask, rng)
    radius = radius or rng.uniform(0.04, 0.10) * image.shape[0]
    alpha = _blob(image.shape, cy, cx, radius, rng, fuzz=1.0) * lung_mask
    out = out * (1.0 - alpha) + alpha * HU_CONSOLIDATION
    return out


def crazy_paving(
    image: np.ndarray, lung_mask: np.ndarray, rng=None,
    radius: Optional[float] = None,
) -> np.ndarray:
    """GGO with superimposed septal-thickening grid lines."""
    rng = rng or np.random.default_rng(0)
    out = image.astype(np.float64).copy()
    cy, cx = _peripheral_center(lung_mask, rng)
    radius = radius or rng.uniform(0.08, 0.16) * image.shape[0]
    alpha = _blob(image.shape, cy, cx, radius, rng) * lung_mask
    out += alpha * (HU_GGO - out) * 0.8
    # Reticular grid: thin bright lines every few pixels inside the blob.
    period = max(3, int(image.shape[0] * 0.035))
    ys, xs = np.mgrid[0 : image.shape[0], 0 : image.shape[1]]
    grid = ((ys % period == 0) | (xs % period == 0)).astype(np.float64)
    out += alpha * grid * 120.0
    return out


def reversed_halo(
    image: np.ndarray, lung_mask: np.ndarray, rng=None,
    radius: Optional[float] = None,
) -> np.ndarray:
    """Central GGO surrounded by a ring of consolidation."""
    rng = rng or np.random.default_rng(0)
    out = image.astype(np.float64).copy()
    cy, cx = _peripheral_center(lung_mask, rng, peripheral=False)
    radius = radius or rng.uniform(0.07, 0.12) * image.shape[0]
    ys, xs = np.mgrid[0 : image.shape[0], 0 : image.shape[1]].astype(np.float64)
    r = np.hypot(ys - cy, xs - cx)
    core = np.clip((radius * 0.65 - r) / 2.0 + 0.5, 0, 1) * lung_mask
    ring = np.clip(1.0 - np.abs(r - radius * 0.85) / (radius * 0.18), 0, 1) * lung_mask
    out += core * (HU_GGO - out) * 0.7
    out = out * (1.0 - ring) + ring * HU_CONSOLIDATION
    return out


def linear_opacity(
    image: np.ndarray, lung_mask: np.ndarray, rng=None,
    length: Optional[float] = None,
) -> np.ndarray:
    """Thin band-like (linear) opacity crossing lung parenchyma."""
    rng = rng or np.random.default_rng(0)
    out = image.astype(np.float64).copy()
    cy, cx = _peripheral_center(lung_mask, rng)
    length = length or rng.uniform(0.10, 0.22) * image.shape[0]
    theta = rng.uniform(0, np.pi)
    ys, xs = np.mgrid[0 : image.shape[0], 0 : image.shape[1]].astype(np.float64)
    # Distance from the line through (cy, cx) with direction theta.
    d_perp = np.abs(-(xs - cx) * np.sin(theta) + (ys - cy) * np.cos(theta))
    d_along = np.abs((xs - cx) * np.cos(theta) + (ys - cy) * np.sin(theta))
    band = np.clip(1.5 - d_perp, 0, 1) * (d_along <= length / 2.0) * lung_mask
    out += band * (HU_GGO * 0.7 - out) * 0.8
    return out


def diffuse_pneumonia(
    image: np.ndarray, lung_mask: np.ndarray, rng=None,
    num_foci: Optional[int] = None,
) -> np.ndarray:
    """Viral-pneumonia pattern (paper §7: "other maladies").

    Many small opacification foci scattered *throughout* both lungs —
    diffuse and bilateral, in contrast to COVID-19's predominantly
    peripheral, focal distribution.
    """
    rng = rng or np.random.default_rng(0)
    out = image.astype(np.float64).copy()
    num_foci = num_foci or int(rng.integers(6, 12))
    idx = np.argwhere(lung_mask)
    if len(idx) == 0:
        raise ValueError("empty lung mask")
    for _ in range(num_foci):
        cy, cx = idx[rng.integers(0, len(idx))]
        radius = rng.uniform(0.02, 0.05) * image.shape[0]
        alpha = _blob(image.shape, int(cy), int(cx), radius, rng, fuzz=1.5) * lung_mask
        out += alpha * (HU_GGO - out) * rng.uniform(0.4, 0.7)
    return out


def nodule(
    image: np.ndarray, lung_mask: np.ndarray, rng=None,
    radius: Optional[float] = None,
) -> np.ndarray:
    """Solid pulmonary nodule (the LIDC / lung-cancer screening target).

    A small, dense, sharply marginated sphere — distinct from the hazy
    infectious patterns.
    """
    rng = rng or np.random.default_rng(0)
    out = image.astype(np.float64).copy()
    cy, cx = _peripheral_center(lung_mask, rng, peripheral=False)
    radius = radius or rng.uniform(0.02, 0.045) * image.shape[0]
    ys, xs = np.mgrid[0 : image.shape[0], 0 : image.shape[1]].astype(np.float64)
    r = np.hypot(ys - cy, xs - cx)
    core = np.clip((radius - r) / 0.8 + 0.5, 0.0, 1.0) * lung_mask
    out = out * (1.0 - core) + core * 40.0  # soft-tissue density
    return out


LESION_TYPES: Dict[str, Callable] = {
    "ggo": ground_glass_opacity,
    "consolidation": consolidation,
    "crazy_paving": crazy_paving,
    "reversed_halo": reversed_halo,
    "linear_opacity": linear_opacity,
    "diffuse_pneumonia": diffuse_pneumonia,
    "nodule": nodule,
}

#: Lesion kinds that constitute the COVID-19 radiological signature
#: (Fig. 1); the remaining entries model the §7 "other maladies".
COVID_LESION_TYPES = ("ggo", "consolidation", "crazy_paving",
                      "reversed_halo", "linear_opacity")


def add_lesion(
    image: np.ndarray,
    lung_mask: np.ndarray,
    kind: str = "ggo",
    rng=None,
    **kwargs,
) -> np.ndarray:
    """Dispatch to a lesion generator by name (see :data:`LESION_TYPES`)."""
    if kind not in LESION_TYPES:
        raise KeyError(f"unknown lesion type {kind!r}; choose from {sorted(LESION_TYPES)}")
    return LESION_TYPES[kind](image, lung_mask, rng=rng, **kwargs)
