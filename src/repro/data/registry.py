"""Data-source registry (paper Table 1).

Records the four clinical sources with their paper-reported contents
and maps each to its synthetic stand-in in :mod:`repro.data.datasets`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class DataSourceInfo:
    """One row of Table 1 plus reproduction metadata."""

    key: str
    name: str
    contents: str
    num_scans: int
    covid_positive: bool
    has_projection_data: bool
    synthetic_factory: str  # dotted name of the stand-in factory


DATA_SOURCES: Dict[str, DataSourceInfo] = {
    "mayo": DataSourceInfo(
        key="mayo",
        name="Mayo Clinic",
        contents="Eight (8) healthy chest CT scans & assoc. projection data at full & quarter dosage",
        num_scans=8,
        covid_positive=False,
        has_projection_data=True,
        synthetic_factory="repro.data.datasets.mayo_clinic",
    ),
    "bimcv": DataSourceInfo(
        key="bimcv",
        name="Medical Imaging Databank of the Valencia Region (BIMCV)",
        contents="X-ray scans & CT scans of 34 COVID-19 patients",
        num_scans=34,
        covid_positive=True,
        has_projection_data=False,
        synthetic_factory="repro.data.datasets.bimcv",
    ),
    "midrc": DataSourceInfo(
        key="midrc",
        name="Medical Imaging and Data Resource Center (MIDRC)",
        contents="229 CT scans of COVID-19 patients",
        num_scans=229,
        covid_positive=True,
        has_projection_data=False,
        synthetic_factory="repro.data.datasets.midrc",
    ),
    "lidc": DataSourceInfo(
        key="lidc",
        name="Lung Image Database Consortium Image Collection (LIDC)",
        contents="1301 healthy chest CT scans",
        num_scans=1301,
        covid_positive=False,
        has_projection_data=False,
        synthetic_factory="repro.data.datasets.lidc",
    ),
}


def data_source_table() -> List[Dict[str, str]]:
    """Rows for regenerating Table 1."""
    return [
        {"Data Source": info.name, "Contents": info.contents}
        for info in DATA_SOURCES.values()
    ]
