"""Structured observability: one event spine for the whole system.

The paper's performance story (§4, Tables 4–7, Fig. 10) is built on
instrumentation — per-kernel counters and wall-clock traces.  This
package is that instrumentation layer for the reproduction, grown to
serving scale: a typed event bus, a metrics registry, and span-scoped
tracing with lossless JSONL export/import.

- :mod:`~repro.telemetry.events` — :class:`TelemetryEvent` +
  :class:`EventBus` (append-only log, synchronous subscribers,
  :func:`export_jsonl` / :func:`load_jsonl`),
- :mod:`~repro.telemetry.metrics` — :class:`MetricsRegistry` of
  counters, gauges, and nearest-rank-percentile histograms,
- :mod:`~repro.telemetry.spans` — :class:`Span` regions over simulated
  clocks.

Everything that used to log privately now rides this spine:

- ``repro.serve`` — the engine's whole discrete-event trace (arrival /
  dispatch / complete / shed / fault / retry / heartbeat / degrade),
  per-request ``request_done`` records, and the admission queue's
  conservation ledger as registry counters,
- ``repro.hetero`` — :class:`repro.hetero.runtime.ExecutionTrace` is a
  view over ``kernel_launch`` events,
- ``repro.resilience`` — circuit breakers are driven *from* bus events
  (``complete`` / ``fault``) and emit ``breaker_transition`` events
  back onto it,
- ``repro.pipeline`` — the trainer emits ``epoch`` / ``step`` events.

See ``docs/telemetry.md`` for the event schema and the
``repro serve --trace-out`` → ``repro trace summary`` round trip.
"""

from repro.telemetry.events import (
    EventBus,
    TelemetryEvent,
    export_jsonl,
    load_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.telemetry.spans import Span, SpanHandle, open_span, spans_from_events

__all__ = [
    "TelemetryEvent", "EventBus", "export_jsonl", "load_jsonl",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "percentile",
    "Span", "SpanHandle", "open_span", "spans_from_events",
]
