"""The structured event bus: one spine for every trace in the system.

Every layer that used to keep a private trace list — the serving
engine's ``TraceEvent`` log, ``repro.hetero``'s per-kernel
``ExecutionTrace``, the circuit breakers' transition lists — now emits
:class:`TelemetryEvent` records onto one :class:`EventBus`.  An event
is ``(seq, t, kind, source, payload)``: ``seq`` is a bus-global
emission counter (total order, ties in ``t`` resolved by emission),
``t`` is *simulated* time in the emitting layer's clock (the serving
engine's event-loop clock, cumulative modelled kernel time for an
inference trace, global step count for training), ``kind`` is the event
type, ``source`` names the emitting component, and ``payload`` carries
the structured detail.

Subscribers react synchronously at emission — this is how circuit
breakers are driven from ``complete``/``fault`` events
(:meth:`repro.resilience.health.FleetHealth.attach`) — and the whole
log round-trips through JSONL (:func:`export_jsonl` /
:func:`load_jsonl`) so a run's metrics can be recomputed offline,
bit-identically, by ``repro trace summary``.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["TelemetryEvent", "EventBus", "export_jsonl", "load_jsonl"]


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured record on the bus."""

    seq: int
    t: float
    kind: str
    source: str = ""
    payload: Dict[str, object] = field(default_factory=dict)


class EventBus:
    """Append-only event log with synchronous kind-filtered subscribers.

    The bus never interprets ``t``; each source keeps its own monotone
    clock.  Within one source (e.g. one serving-engine run) timestamps
    are non-decreasing; across sources only ``seq`` orders events.
    """

    def __init__(self):
        self.events: List[TelemetryEvent] = []
        self._seq = itertools.count()
        self._subscribers: List[
            Tuple[Optional[frozenset], Callable[[TelemetryEvent], None]]] = []

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, t: float, kind: str, source: str = "",
             **payload) -> TelemetryEvent:
        """Append an event and notify matching subscribers (in order)."""
        event = TelemetryEvent(next(self._seq), float(t), kind, source, payload)
        self.events.append(event)
        for kinds, handler in self._subscribers:
            if kinds is None or kind in kinds:
                handler(event)
        return event

    def subscribe(self, handler: Callable[[TelemetryEvent], None],
                  kinds: Optional[Iterable[str]] = None) -> None:
        """Register ``handler`` for every event (or only ``kinds``)."""
        self._subscribers.append(
            (None if kinds is None else frozenset(kinds), handler))

    # -- views ----------------------------------------------------------
    def mark(self) -> int:
        """Position bookmark; pass to :meth:`since` to scope a view."""
        return len(self.events)

    def since(self, mark: int = 0) -> List[TelemetryEvent]:
        return self.events[mark:]

    def of_kind(self, *kinds: str, since: int = 0) -> List[TelemetryEvent]:
        wanted = set(kinds)
        return [e for e in self.events[since:] if e.kind in wanted]

    def kinds(self) -> set:
        return {e.kind for e in self.events}


# ---------------------------------------------------------------------------
# JSONL export / import
# ---------------------------------------------------------------------------
def _jsonable(value):
    """Map payload values onto the JSON type system, losslessly for the
    types the summary math depends on (Python floats round-trip exactly
    through ``json``'s repr-based float formatting)."""
    if isinstance(value, Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v)
                for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()  # numpy scalars
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def export_jsonl(path: str, events: Sequence[TelemetryEvent]) -> int:
    """Write ``events`` as one JSON object per line; returns the count."""
    with open(path, "w") as fh:
        for e in events:
            fh.write(json.dumps({
                "seq": e.seq, "t": e.t, "kind": e.kind, "source": e.source,
                "payload": _jsonable(e.payload),
            }, separators=(",", ":")) + "\n")
    return len(events)


def load_jsonl(path: str) -> List[TelemetryEvent]:
    """Read a trace written by :func:`export_jsonl`."""
    events: List[TelemetryEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            events.append(TelemetryEvent(
                seq=int(raw["seq"]), t=float(raw["t"]), kind=raw["kind"],
                source=raw.get("source", ""), payload=raw.get("payload", {}),
            ))
    return events
