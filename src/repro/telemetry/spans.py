"""Span-scoped tracing over the event bus (Dapper-style, sim-time).

A span is a named region of one source's clock — an entire DDnet
inference, a training epoch — recorded as a single ``span`` event at
close time so it needs no cross-event matching.  Because every clock
here is *modelled* (simulated seconds, step counts) rather than
wall-clock, spans are opened and closed with explicit timestamps
instead of a context manager around real time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.telemetry.events import EventBus, TelemetryEvent

__all__ = ["Span", "SpanHandle", "open_span", "spans_from_events"]


@dataclass(frozen=True)
class Span:
    """A closed span, reconstructed from its ``span`` event."""

    name: str
    source: str
    t_start: float
    t_end: float
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start


class SpanHandle:
    """An open span; :meth:`close` emits the ``span`` event."""

    def __init__(self, bus: EventBus, name: str, source: str, t_start: float):
        self.bus = bus
        self.name = name
        self.source = source
        self.t_start = float(t_start)
        self.closed = False

    def close(self, t_end: float, **attrs) -> TelemetryEvent:
        if self.closed:
            raise RuntimeError(f"span {self.name!r} already closed")
        if t_end < self.t_start:
            raise ValueError("span must close at or after its start")
        self.closed = True
        return self.bus.emit(
            float(t_end), "span", self.source,
            name=self.name, t_start=self.t_start,
            duration_s=float(t_end) - self.t_start, **attrs)


def open_span(bus: EventBus, name: str, source: str = "",
              t_start: float = 0.0) -> SpanHandle:
    """Open a span on ``bus``; call ``.close(t_end, **attrs)`` to record."""
    return SpanHandle(bus, name, source, t_start)


def spans_from_events(events: Iterable[TelemetryEvent]) -> List[Span]:
    """Rebuild :class:`Span` views from ``span`` events (e.g. a loaded
    JSONL trace)."""
    out = []
    for e in events:
        if e.kind != "span":
            continue
        attrs = {k: v for k, v in e.payload.items()
                 if k not in ("name", "t_start", "duration_s")}
        out.append(Span(name=str(e.payload["name"]), source=e.source,
                        t_start=float(e.payload["t_start"]), t_end=e.t,
                        attrs=attrs))
    return out
