"""The metrics registry: counters, gauges, and histograms.

One registry per serving engine (or any other component) replaces the
ad-hoc counter dicts that grew across the codebase: the admission
queue's conservation ledger, the engine's per-kind fault tallies, and
the latency distributions that both ``ServingReport.summary()`` and
``repro trace summary`` must agree on.  Histograms keep raw samples and
use the repo-wide **nearest-rank** percentile (:func:`percentile`,
no interpolation — equivalent to ``numpy.percentile(...,
method="inverted_cdf")``), so any two summaries computed from the same
samples are bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["percentile", "Counter", "Gauge", "Histogram", "MetricsRegistry"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    Matches ``numpy.percentile(values, q, method="inverted_cdf")`` for
    every ``q`` in [0, 100] (property-tested), returns NaN on empty
    input.
    """
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    vals = sorted(values)
    if not vals:
        return float("nan")
    rank = max(1, -(-len(vals) * q // 100))  # ceil without math import
    return float(vals[int(rank) - 1])


class Counter:
    """Monotone event count (resettable for run-scoped tallies)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only count up")
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Raw-sample distribution with nearest-rank percentiles."""

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def reset(self) -> None:
        self.values = []

    @property
    def count(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        if not self.values:
            return float("nan")
        return float(sum(self.values) / len(self.values))

    def max(self) -> float:
        return float(max(self.values)) if self.values else float("nan")

    def percentile(self, q: float) -> float:
        return percentile(self.values, q)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count, "mean": self.mean(),
            "p50": self.percentile(50), "p95": self.percentile(95),
            "p99": self.percentile(99), "max": self.max(),
        }


class MetricsRegistry:
    """Named instruments, created on first touch, insertion-ordered."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def as_dict(self) -> Dict[str, object]:
        """Flat snapshot: counters/gauges by value, histograms summarized."""
        out: Dict[str, object] = {}
        for name, c in self.counters.items():
            out[name] = c.value
        for name, g in self.gauges.items():
            out[name] = g.value
        for name, h in self.histograms.items():
            out[name] = h.summary()
        return out
