"""Fault injection, failover, and graceful degradation for serving.

``repro.serve`` (PR 1) assumed a perfect fleet; this subpackage makes
the serving engine survive an imperfect one:

- :mod:`~repro.resilience.faults` — a seeded, deterministic fault
  injector (transient kernel failures, device crashes, stragglers,
  FPGA-reconfiguration stalls) plus a kernel-granularity hook for
  :class:`repro.hetero.runtime.InferenceEngine`,
- :mod:`~repro.resilience.health` — per-device circuit breakers
  (closed → open → half-open probe, plus a terminal dead state) driven
  by heartbeat events in the discrete-event loop,
- :mod:`~repro.resilience.failover` — bounded retries with exponential
  backoff and excluded-device re-dispatch; exhausted batches are shed
  with the distinct ``fault`` reason,
- :mod:`~repro.resilience.degrade` — a pressure-driven controller that
  flips the pipeline to the Fig. 13 ``use_enhancement=False`` arm
  (results tagged ``degraded=True``) until queue depth and p95 latency
  subside,
- :mod:`~repro.resilience.ranks` — the same adversary at training-rank
  granularity (MTTF/scripted crashes, per-step stragglers, regrow
  schedules) for the elastic DDP runtime in
  :mod:`repro.distributed.runtime`.

:class:`ResilienceConfig` bundles the four layers; pass it to
:class:`repro.serve.ServingEngine` to arm them.  See
``docs/resilience.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.resilience.degrade import DegradationController, DegradeConfig
from repro.resilience.failover import FailoverManager, RetryPolicy
from repro.resilience.faults import (
    FAULT_KINDS,
    BatchOutcome,
    FaultConfig,
    FaultInjector,
    KernelFault,
    kernel_fault_hook,
)
from repro.resilience.health import (
    BreakerState,
    CircuitBreaker,
    FleetHealth,
    HealthConfig,
)
from repro.resilience.ranks import (
    RankFaultConfig,
    RankFaultInjector,
    scripted_crashes,
)


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the serving engine needs to survive a faulty fleet.

    ``faults=None`` runs fault-free (health/degrade layers still work —
    useful for degradation under pure overload); ``retry=None`` disables
    failover so first failures shed immediately (the chaos benchmark's
    baseline arm); ``degrade=None`` disables graceful degradation.
    """

    faults: Optional[FaultConfig] = None
    retry: Optional[RetryPolicy] = field(default_factory=RetryPolicy)
    health: HealthConfig = field(default_factory=HealthConfig)
    degrade: Optional[DegradeConfig] = None
    #: DAG mode only: when a batch at a *skippable* stage (enhance)
    #: exhausts failover, route its requests around the stage — they
    #: continue degraded (Fig. 13 no-enhancement arm) instead of being
    #: shed with ``ShedReason.FAULT``.
    route_around_stage: bool = True


__all__ = [
    "ResilienceConfig",
    "FaultConfig", "FaultInjector", "BatchOutcome", "FAULT_KINDS",
    "KernelFault", "kernel_fault_hook",
    "HealthConfig", "CircuitBreaker", "BreakerState", "FleetHealth",
    "RetryPolicy", "FailoverManager",
    "DegradeConfig", "DegradationController",
    "RankFaultConfig", "RankFaultInjector", "scripted_crashes",
]
