"""Retry/failover: requeue failed batches onto the surviving fleet.

When a dispatched batch fails (transient kernel fault, device crash,
launch onto a corpse) the :class:`FailoverManager` decides its future:
retry after exponential backoff with the failed device added to the
batch's excluded set — so the re-dispatch, routed through the existing
perf-aware policy, lands somewhere else — or, after ``max_retries``
attempts, give the batch up so the engine sheds its requests with the
distinct ``fault`` reason.

If the exclusion set ever covers every *healthy* device (e.g. the batch
has bounced across a shrinking fleet), exclusions are forgiven rather
than stranding the batch: a healthy device that failed one attempt is
still better than certain loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff."""

    max_retries: int = 3
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 8.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s <= 0 or self.backoff_max_s <= 0:
            raise ValueError("backoff times must be positive")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        return min(self.backoff_base_s * self.backoff_factor ** (attempt - 1),
                   self.backoff_max_s)


class FailoverManager:
    """Per-batch retry accounting for the serving engine."""

    def __init__(self, policy: Optional[RetryPolicy] = None):
        self.policy = policy or RetryPolicy()
        self.retries = 0
        self.gave_up = 0

    def on_failure(self, batch, device_name: str, now: float,
                   healthy: Set[str]) -> Optional[float]:
        """Register a failed attempt; returns the retry time or None (shed).

        Mutates ``batch``: bumps its attempt counter and excludes the
        failed device from re-dispatch.
        """
        batch.attempt += 1
        batch.excluded_devices.add(device_name)
        if batch.attempt > self.policy.max_retries or not healthy:
            self.gave_up += 1
            return None
        if healthy <= batch.excluded_devices:
            # Every healthy device already failed this batch once;
            # forgive rather than strand.
            batch.excluded_devices.clear()
        self.retries += 1
        return now + self.policy.backoff_s(batch.attempt)
