"""Seeded, deterministic fault injection for the serving fleet.

Production CT-diagnosis systems must stay available under hardware
faults (CoRSAI, arXiv:2105.11863, is pitched as a *robust*
interpretation system); this module supplies the adversary.  A
:class:`FaultInjector` attaches to the serving engine and decides, per
dispatched batch, whether the launch succeeds, fails, or slows down:

- **transient** — a kernel launch fails partway through service (the
  OpenCL ``CL_OUT_OF_RESOURCES`` class of error); the batch is lost but
  the device survives,
- **crash** — the device dies at a pre-drawn time (exponential with
  mean ``mttf_s``, or an explicit schedule); every batch in flight at
  that moment fails and the device never returns,
- **straggler** — the batch completes, but ``straggler_factor``× slower
  (thermal throttling, a contended PCIe link),
- **reconfig** — FPGA devices only: the launch lands during a §4.2.3
  runtime reconfiguration and stalls for an extra bitstream-swap delay
  (:data:`repro.hetero.fpga.RECONFIG_TIME_S`-scale).

Everything is a pure function of ``(seed, device, batch_id, attempt)``
via independent :class:`numpy.random.Generator` streams, so a chaos run
is bit-reproducible and a *retry* of the same batch on the same device
sees fresh luck — exactly what the failover layer needs.

:func:`kernel_fault_hook` provides the same adversary at the kernel
granularity for :class:`repro.hetero.runtime.InferenceEngine`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence

import numpy as np

from repro.hetero.device import DeviceSpec
from repro.hetero.fpga import RECONFIG_TIME_S

#: Outcome kinds, in reporting order.
FAULT_KINDS = ("transient", "crash", "dead", "straggler", "reconfig")


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the fault model (all rates are per dispatched batch)."""

    seed: int = 0
    #: Mean time to (permanent) device failure; ``inf`` disables crashes.
    mttf_s: float = math.inf
    #: Explicit per-device crash times; overrides the ``mttf_s`` draw.
    crash_times: Mapping[str, float] = field(default_factory=dict)
    #: Cap on how many devices may crash (earliest draws win).
    max_crashes: Optional[int] = None
    transient_rate: float = 0.02
    #: Fraction of the service time elapsed when a transient fault fires.
    transient_fail_frac: float = 0.5
    straggler_rate: float = 0.05
    straggler_factor: float = 4.0
    #: FPGA-only probability of landing during a reconfiguration.
    reconfig_rate: float = 0.15
    reconfig_stall_s: float = 4 * RECONFIG_TIME_S
    #: Time to detect a launch onto an already-dead device.
    detection_s: float = 0.01

    def __post_init__(self):
        for name in ("transient_rate", "straggler_rate", "reconfig_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.mttf_s <= 0:
            raise ValueError("mttf_s must be positive (inf disables crashes)")
        if not 0.0 < self.transient_fail_frac <= 1.0:
            raise ValueError("transient_fail_frac must be in (0, 1]")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")


@dataclass(frozen=True)
class BatchOutcome:
    """The injector's verdict on one dispatch attempt."""

    kind: str  # "ok" | one of FAULT_KINDS
    #: Adjusted service time for surviving kinds (straggler/reconfig).
    service_s: float
    fails: bool = False
    #: Dispatch-relative time at which the failure surfaces.
    fail_after_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.fails


class FaultInjector:
    """Deterministic per-(device, batch, attempt) fault decisions."""

    def __init__(self, config: FaultConfig, devices: Sequence[DeviceSpec]):
        self.config = config
        self.devices = list(devices)
        self._index = {d.name: i for i, d in enumerate(self.devices)}
        rng = np.random.default_rng([config.seed, 0xFA017])
        times: Dict[str, float] = {}
        for d in self.devices:
            # Draw for every device in registration order so explicit
            # schedules don't shift the other devices' streams.
            drawn = float(rng.exponential(config.mttf_s)) \
                if math.isfinite(config.mttf_s) else math.inf
            if d.name in config.crash_times:
                times[d.name] = float(config.crash_times[d.name])
            else:
                times[d.name] = drawn
        if config.max_crashes is not None:
            finite = sorted((t, n) for n, t in times.items() if math.isfinite(t))
            for _, name in finite[config.max_crashes:]:
                times[name] = math.inf
        self.crash_times = times

    # ------------------------------------------------------------------
    def add_device(self, spec: DeviceSpec, now: float = 0.0) -> None:
        """Register a device provisioned mid-run (fleet autoscaling).

        Its crash time is drawn from a stream keyed on the device's
        registration index, so the existing devices' fates are
        untouched and the draw is independent of provisioning order
        elsewhere in the fleet.  ``now`` shifts the draw: a device
        cannot have crashed before it existed.
        """
        if spec.name in self._index:
            raise ValueError(f"device {spec.name!r} already registered")
        index = len(self.devices)
        self.devices.append(spec)
        self._index[spec.name] = index
        if spec.name in self.config.crash_times:
            self.crash_times[spec.name] = float(
                self.config.crash_times[spec.name])
        elif math.isfinite(self.config.mttf_s):
            rng = np.random.default_rng([self.config.seed, 0xFA017, index])
            self.crash_times[spec.name] = now + float(
                rng.exponential(self.config.mttf_s))
        else:
            self.crash_times[spec.name] = math.inf

    def crash_time(self, device_name: str) -> float:
        return self.crash_times[device_name]

    def alive(self, device_name: str, now: float) -> bool:
        return now < self.crash_times[device_name]

    def outcome(
        self,
        device: DeviceSpec,
        batch_id: int,
        now: float,
        service_s: float,
        attempt: int = 0,
    ) -> BatchOutcome:
        """Fate of dispatching ``batch_id`` to ``device`` at ``now``."""
        cfg = self.config
        crash_at = self.crash_times[device.name]
        if now >= crash_at:  # launched onto a corpse
            return BatchOutcome("dead", service_s, fails=True,
                                fail_after_s=cfg.detection_s)
        rng = np.random.default_rng(
            [cfg.seed, self._index[device.name], batch_id, attempt])
        # Fixed draw count/order keeps the stream stable across config
        # changes to individual rates.
        u_transient, u_straggler, u_reconfig = rng.random(3)
        service = service_s
        kind = "ok"
        if u_straggler < cfg.straggler_rate:
            service, kind = service * cfg.straggler_factor, "straggler"
        elif device.device_type == "fpga" and u_reconfig < cfg.reconfig_rate:
            service, kind = service + cfg.reconfig_stall_s, "reconfig"
        if u_transient < cfg.transient_rate:
            fail_after = service * cfg.transient_fail_frac
            if now + fail_after >= crash_at:  # the crash gets there first
                return BatchOutcome("crash", service, fails=True,
                                    fail_after_s=crash_at - now)
            return BatchOutcome("transient", service, fails=True,
                                fail_after_s=fail_after)
        if now + service >= crash_at:  # device dies mid-batch
            return BatchOutcome("crash", service, fails=True,
                                fail_after_s=crash_at - now)
        return BatchOutcome(kind, service)


# ---------------------------------------------------------------------------
# Kernel-granularity faults for repro.hetero.runtime
# ---------------------------------------------------------------------------
class KernelFault(RuntimeError):
    """An injected kernel-launch failure (transient, device survives)."""


def kernel_fault_hook(
    seed: int = 0,
    failure_rate: float = 0.0,
    slow_rate: float = 0.0,
    slow_factor: float = 3.0,
) -> Callable[[str, str, float], float]:
    """Build a deterministic fault hook for ``InferenceEngine``.

    The returned callable matches the engine's ``fault_hook(kind, site,
    time_s)`` contract: it may raise :class:`KernelFault` or return an
    adjusted launch time.  Decisions hash a monotone launch counter, so
    a fresh hook replays the identical fault sequence.
    """
    if not 0.0 <= failure_rate <= 1.0 or not 0.0 <= slow_rate <= 1.0:
        raise ValueError("rates must be in [0, 1]")
    state = {"launch": 0}

    def hook(kind: str, site: str, time_s: float) -> float:
        launch = state["launch"]
        state["launch"] += 1
        u_fail, u_slow = np.random.default_rng([seed, launch]).random(2)
        if u_fail < failure_rate:
            raise KernelFault(f"injected fault in {kind} kernel at {site} "
                              f"(launch #{launch})")
        if u_slow < slow_rate:
            return time_s * slow_factor
        return time_s

    return hook
