"""Graceful degradation: shed quality, not requests.

The paper's Fig. 13 original-vs-enhanced comparison (also evaluated in
the companion framework paper, arXiv:2112.09216) gives the serving
system a principled degraded mode: the pipeline still produces a
diagnosis without the Enhancement AI stage, just from lower-quality
input — and enhancement is by far the most expensive stage (§5.1.1).

The :class:`DegradationController` watches admission-queue depth and
the p95 of recent completion latencies.  When either crosses its high
watermark — an overloaded or shrunken fleet — newly admitted requests
enter the pipeline at the segmentation stage (``use_enhancement=False``
arm) and their results are tagged ``degraded=True``.  Hysteresis (a low
watermark plus a minimum dwell time) prevents mode flapping.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple


def _p95(values) -> float:
    """Nearest-rank p95 (local copy to keep this module import-light)."""
    vals = sorted(values)
    if not vals:
        return 0.0
    rank = max(1, -(-len(vals) * 95 // 100))
    return float(vals[rank - 1])


@dataclass(frozen=True)
class DegradeConfig:
    """Watermarks and hysteresis of the degradation controller."""

    #: Enter degraded mode when queue occupancy reaches this.
    queue_high: int = 24
    #: Leave degraded mode only once occupancy is back at or below this.
    queue_low: int = 8
    #: Enter degraded mode when p95 completion latency reaches this.
    p95_high_s: float = 20.0
    #: Completion-latency window length (number of completions).
    window: int = 32
    #: Minimum seconds between mode switches.
    min_dwell_s: float = 2.0

    def __post_init__(self):
        if self.queue_low > self.queue_high:
            raise ValueError("queue_low must be <= queue_high")
        if self.queue_high < 1 or self.p95_high_s <= 0:
            raise ValueError("watermarks must be positive")
        if self.window < 1 or self.min_dwell_s < 0:
            raise ValueError("window must be >= 1 and dwell >= 0")


class DegradationController:
    """Pressure-driven switch between the full and no-enhancement arms."""

    def __init__(self, config: DegradeConfig = DegradeConfig()):
        self.config = config
        self.active = False
        self.switches: List[Tuple[float, str]] = []
        self._latencies: Deque[float] = deque(maxlen=config.window)
        self._last_switch = float("-inf")

    def record_latency(self, latency_s: float) -> None:
        self._latencies.append(latency_s)

    def p95_s(self) -> float:
        return _p95(self._latencies)

    def evaluate(self, now: float, queue_depth: int) -> bool:
        """Update the mode from current pressure; returns ``active``."""
        cfg = self.config
        if now - self._last_switch < cfg.min_dwell_s:
            return self.active
        p95 = self.p95_s()
        if not self.active:
            if queue_depth >= cfg.queue_high or p95 >= cfg.p95_high_s:
                self.active = True
                self._last_switch = now
                self.switches.append((now, "degraded"))
        else:
            if queue_depth <= cfg.queue_low and p95 < cfg.p95_high_s:
                self.active = False
                self._last_switch = now
                self.switches.append((now, "full"))
        return self.active
