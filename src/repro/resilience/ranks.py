"""Rank-level fault injection for distributed training.

The serving-side :class:`~repro.resilience.faults.FaultInjector` targets
*devices*; elastic DDP (:mod:`repro.distributed.runtime`) needs the
same adversary at *rank* granularity: a training rank crashes mid-epoch
(node reclaimed, NIC dies), straggles for a step (co-tenant contention,
thermal throttling), and — unlike a serving device — may come back
after an operator fixes it, at which point elastic membership regrows.

Everything is a pure function of ``(seed, rank[, step])`` through
independent :class:`numpy.random.Generator` streams, mirroring the
device injector's contract: a chaos training run is bit-reproducible,
and changing one rank's scripted fate never shifts another's stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

__all__ = ["RankFaultConfig", "RankFaultInjector", "scripted_crashes"]


@dataclass(frozen=True)
class RankFaultConfig:
    """Knobs of the rank-level fault model (times in simulated seconds)."""

    seed: int = 0
    #: Mean time to rank crash; ``inf`` disables MTTF-drawn crashes.
    mttf_s: float = math.inf
    #: Explicit per-rank crash times; overrides the ``mttf_s`` draw.
    crash_times: Mapping[int, float] = field(default_factory=dict)
    #: Cap on how many ranks may crash (earliest draws win).
    max_crashes: Optional[int] = None
    #: Per-(rank, step) probability of straggling.
    straggler_rate: float = 0.0
    #: Compute-time multiplier for a straggling rank-step.
    straggler_factor: float = 4.0
    #: Crashed ranks rejoin after this delay; ``None`` → never regrow.
    regrow_delay_s: Optional[float] = None

    def __post_init__(self):
        if not 0.0 <= self.straggler_rate <= 1.0:
            raise ValueError("straggler_rate must be in [0, 1]")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.mttf_s <= 0:
            raise ValueError("mttf_s must be positive (inf disables crashes)")
        if self.regrow_delay_s is not None and self.regrow_delay_s <= 0:
            raise ValueError("regrow_delay_s must be positive")


class RankFaultInjector:
    """Deterministic per-rank crash times and per-step straggler draws."""

    def __init__(self, config: RankFaultConfig, world_size: int):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.config = config
        self.world_size = world_size
        rng = np.random.default_rng([config.seed, 0x4A7C])
        times: Dict[int, float] = {}
        for rank in range(world_size):
            # Draw for every rank in order so explicit schedules don't
            # shift the other ranks' streams.
            drawn = float(rng.exponential(config.mttf_s)) \
                if math.isfinite(config.mttf_s) else math.inf
            if rank in config.crash_times:
                times[rank] = float(config.crash_times[rank])
            else:
                times[rank] = drawn
        if config.max_crashes is not None:
            finite = sorted((t, r) for r, t in times.items()
                            if math.isfinite(t))
            for _, rank in finite[config.max_crashes:]:
                times[rank] = math.inf
        self.crash_times = times

    def crash_time(self, rank: int) -> float:
        return self.crash_times[rank]

    def alive(self, rank: int, now: float) -> bool:
        return now < self.crash_times[rank]

    def regrow_time(self, rank: int) -> float:
        """When the crashed rank rejoins (``inf`` if it never does)."""
        crash = self.crash_times[rank]
        if self.config.regrow_delay_s is None or not math.isfinite(crash):
            return math.inf
        return crash + self.config.regrow_delay_s

    def redraw_crash(self, rank: int, incarnation: int, now: float) -> float:
        """Crash time for a rank's post-regrow incarnation.

        Scripted first-life crash times don't recur; with a finite
        ``mttf_s`` the repaired rank draws a fresh exponential lifetime
        from a stream keyed on ``(rank, incarnation)``, so earlier
        incarnations' fates never shift.
        """
        if incarnation < 1:
            raise ValueError("incarnation 0 is the constructor draw")
        if not math.isfinite(self.config.mttf_s):
            return math.inf
        rng = np.random.default_rng(
            [self.config.seed, 0x4A7C, rank, incarnation])
        return now + float(rng.exponential(self.config.mttf_s))

    def straggler_factor(self, rank: int, step: int) -> float:
        """Compute-time multiplier for ``rank`` at global ``step``."""
        cfg = self.config
        if cfg.straggler_rate <= 0.0:
            return 1.0
        u = np.random.default_rng([cfg.seed, 0x57A6, rank, step]).random()
        return cfg.straggler_factor if u < cfg.straggler_rate else 1.0


def scripted_crashes(num_crashes: int, world_size: int,
                     epoch_time_s: float) -> Dict[int, float]:
    """Mid-epoch crash schedule for the highest-numbered ranks.

    Spreads ``num_crashes`` crashes across the middle of the first
    epoch (35%–75% of ``epoch_time_s``), highest rank first — the
    deterministic chaos scenario the bench and CLI share.
    """
    if num_crashes < 0:
        raise ValueError("num_crashes must be >= 0")
    num_crashes = min(num_crashes, max(0, world_size - 1))
    if num_crashes == 0:
        return {}
    times = np.linspace(0.35, 0.75, num_crashes) * epoch_time_s
    return {world_size - 1 - i: float(t) for i, t in enumerate(times)}
