"""Per-device health: circuit breakers driven by telemetry events.

Each fleet device gets a :class:`CircuitBreaker` with the classic
state machine:

    CLOSED ──(K consecutive failures)──► OPEN
    OPEN ──(cooldown elapses)──► HALF_OPEN (one probe batch allowed)
    HALF_OPEN ──probe succeeds──► CLOSED
    HALF_OPEN ──probe fails──► OPEN (cooldown grows by ``cooldown_factor``)

plus a terminal DEAD state for devices the heartbeat sweep finds
crashed.  The serving engine's discrete-event loop emits a heartbeat
every ``heartbeat_s`` of simulated time; the sweep marks crashed
devices dead and lets OPEN breakers age toward their half-open probe.
The scheduler excludes every device whose breaker currently refuses
traffic (:meth:`FleetHealth.unavailable`).

Breakers sit *on* the event spine in both directions: attach a
:class:`repro.telemetry.EventBus` (constructor ``bus=`` or
:meth:`FleetHealth.attach`) and success/failure transitions are driven
by the ``complete`` / ``fault`` events the dispatch layer emits —
no direct ``record_success``/``record_failure`` calls from the engine
— while every state change is emitted back as a
``breaker_transition`` event (source = device name).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"
    DEAD = "dead"


@dataclass(frozen=True)
class HealthConfig:
    """Circuit-breaker and heartbeat knobs."""

    #: K consecutive failures flip a CLOSED breaker OPEN.
    failure_threshold: int = 3
    #: Seconds an OPEN breaker waits before allowing a half-open probe.
    cooldown_s: float = 5.0
    #: Cooldown growth after a failed probe (capped at ``cooldown_max_s``).
    cooldown_factor: float = 2.0
    cooldown_max_s: float = 60.0
    #: Simulated-time interval of the engine's heartbeat sweep.
    heartbeat_s: float = 0.5

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s <= 0 or self.cooldown_max_s <= 0:
            raise ValueError("cooldowns must be positive")
        if self.cooldown_factor < 1.0:
            raise ValueError("cooldown_factor must be >= 1")
        if self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")


class CircuitBreaker:
    """One device's failure-driven admission gate."""

    def __init__(self, name: str, config: Optional[HealthConfig] = None,
                 bus=None):
        self.name = name
        self.config = config or HealthConfig()
        self.bus = bus  # optional repro.telemetry.EventBus
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.failures = 0
        self.successes = 0
        self.opens = 0
        self.opened_at: Optional[float] = None
        self.cooldown_s = self.config.cooldown_s
        self._probe_in_flight = False
        self.transitions: List[Tuple[float, str]] = []

    def _set(self, state: BreakerState, now: float) -> None:
        if state is not self.state:
            previous = self.state
            self.state = state
            self.transitions.append((now, state.value))
            if self.bus is not None:
                self.bus.emit(now, "breaker_transition", self.name,
                              device=self.name, state=state.value,
                              previous=previous.value)

    # ------------------------------------------------------------------
    def allows(self, now: float) -> bool:
        """May the scheduler place a batch on this device right now?

        Ages an OPEN breaker into HALF_OPEN when its cooldown has
        elapsed; a HALF_OPEN breaker admits exactly one probe at a time.
        """
        if self.state is BreakerState.DEAD:
            return False
        if self.state is BreakerState.OPEN:
            if self.opened_at is not None and now >= self.opened_at + self.cooldown_s:
                self._set(BreakerState.HALF_OPEN, now)
            else:
                return False
        if self.state is BreakerState.HALF_OPEN:
            return not self._probe_in_flight
        return True

    def begin_probe(self) -> None:
        """The engine dispatched the half-open probe batch."""
        if self.state is BreakerState.HALF_OPEN:
            self._probe_in_flight = True

    def record_success(self, now: float) -> None:
        self._probe_in_flight = False
        self.successes += 1
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.cooldown_s = self.config.cooldown_s  # healed: reset backoff
            self._set(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        self._probe_in_flight = False
        self.failures += 1
        self.consecutive_failures += 1
        if self.state is BreakerState.DEAD:
            return
        if self.state is BreakerState.HALF_OPEN:
            self.cooldown_s = min(self.cooldown_s * self.config.cooldown_factor,
                                  self.config.cooldown_max_s)
            self._open(now)
        elif (self.state is BreakerState.CLOSED
              and self.consecutive_failures >= self.config.failure_threshold):
            self._open(now)

    def _open(self, now: float) -> None:
        self.opens += 1
        self.opened_at = now
        self._set(BreakerState.OPEN, now)

    def mark_dead(self, now: float) -> None:
        self._probe_in_flight = False
        self._set(BreakerState.DEAD, now)


class FleetHealth:
    """Breaker registry plus the heartbeat sweep over the fleet."""

    def __init__(self, device_names: Sequence[str],
                 config: Optional[HealthConfig] = None, bus=None):
        self.config = config or HealthConfig()
        self.breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(name, self.config) for name in device_names}
        self.heartbeats = 0
        self.bus = None
        if bus is not None:
            self.attach(bus)

    def attach(self, bus) -> None:
        """Drive the breakers from ``complete`` / ``fault`` bus events.

        Successes and failures then need no direct calls from the
        dispatch layer: its events *are* the breaker inputs.  State
        changes are emitted back as ``breaker_transition`` events.
        """
        self.bus = bus
        for breaker in self.breakers.values():
            breaker.bus = bus
        bus.subscribe(self._on_event, kinds=("complete", "fault"))

    def _on_event(self, event) -> None:
        name = event.payload.get("device")
        breaker = self.breakers.get(name)
        if breaker is None:
            return
        if event.kind == "complete":
            breaker.record_success(event.t)
        else:
            breaker.record_failure(event.t)
            if event.payload.get("fault") in ("crash", "dead"):
                breaker.mark_dead(event.t)

    def add_device(self, name: str) -> CircuitBreaker:
        """Start tracking a device provisioned mid-run (autoscaling)."""
        if name in self.breakers:
            raise ValueError(f"breaker for {name!r} already exists")
        breaker = CircuitBreaker(name, self.config, bus=self.bus)
        self.breakers[name] = breaker
        return breaker

    def breaker(self, name: str) -> CircuitBreaker:
        return self.breakers[name]

    def unavailable(self, now: float) -> Set[str]:
        """Devices the scheduler must skip at ``now``."""
        return {n for n, b in self.breakers.items() if not b.allows(now)}

    def dead(self) -> Set[str]:
        return {n for n, b in self.breakers.items()
                if b.state is BreakerState.DEAD}

    def any_alive(self) -> bool:
        return any(b.state is not BreakerState.DEAD
                   for b in self.breakers.values())

    def on_heartbeat(self, now: float,
                     alive: Callable[[str], bool]) -> Set[str]:
        """One sweep: mark crashed devices dead; returns newly dead names."""
        self.heartbeats += 1
        newly_dead = set()
        for name, breaker in self.breakers.items():
            if breaker.state is not BreakerState.DEAD and not alive(name):
                breaker.mark_dead(now)
                newly_dead.add(name)
        return newly_dead

    def states(self) -> Dict[str, str]:
        return {n: b.state.value for n, b in self.breakers.items()}
