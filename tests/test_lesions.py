"""Direct tests for the ``repro.data.lesions`` generators (Fig. 1).

The quantify workload's ground truth rides on these generators (the
lesion phantoms' exact masks), so their contracts get pinned here:
determinism under a fixed rng, confinement to the lung mask, and
per-type HU ranges consistent with the radiology they model.
"""

import numpy as np
import pytest

from repro.data.lesions import (
    COVID_LESION_TYPES,
    HU_CONSOLIDATION,
    HU_GGO,
    LESION_TYPES,
    add_lesion,
)

#: Healthy aerated parenchyma the synthetic slice is filled with.
HU_LUNG = -860.0


@pytest.fixture(scope="module")
def slice_and_mask():
    size = 64
    ys, xs = np.mgrid[0:size, 0:size]
    mask = np.hypot(ys - 32, xs - 32) <= 20
    image = np.where(mask, HU_LUNG, 30.0)
    return image, mask


def _changed(before, after):
    return np.abs(after - before) > 1.0


class TestDeterminism:
    @pytest.mark.parametrize("kind", sorted(LESION_TYPES))
    def test_fixed_rng_reproduces_exactly(self, slice_and_mask, kind):
        image, mask = slice_and_mask
        a = add_lesion(image, mask, kind, rng=np.random.default_rng(7))
        b = add_lesion(image, mask, kind, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("kind", sorted(LESION_TYPES))
    def test_default_rng_is_seeded(self, slice_and_mask, kind):
        # rng=None falls back to a fixed seed, not entropy — the
        # phantom datasets depend on that.
        image, mask = slice_and_mask
        a = add_lesion(image, mask, kind)
        b = add_lesion(image, mask, kind)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, slice_and_mask):
        image, mask = slice_and_mask
        a = add_lesion(image, mask, "ggo", rng=np.random.default_rng(1))
        b = add_lesion(image, mask, "ggo", rng=np.random.default_rng(2))
        assert not np.array_equal(a, b)


class TestConfinement:
    @pytest.mark.parametrize("kind", sorted(LESION_TYPES))
    def test_untouched_outside_lung_mask(self, slice_and_mask, kind):
        image, mask = slice_and_mask
        out = add_lesion(image, mask, kind, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(out[~mask], image[~mask])

    @pytest.mark.parametrize("kind", sorted(LESION_TYPES))
    def test_input_not_mutated(self, slice_and_mask, kind):
        image, mask = slice_and_mask
        before = image.copy()
        add_lesion(image, mask, kind, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(image, before)

    @pytest.mark.parametrize("kind", sorted(LESION_TYPES))
    def test_empty_mask_raises(self, slice_and_mask, kind):
        image, mask = slice_and_mask
        with pytest.raises(ValueError):
            add_lesion(image, np.zeros_like(mask), kind,
                       rng=np.random.default_rng(0))


class TestHuRanges:
    @pytest.mark.parametrize("kind", sorted(LESION_TYPES))
    def test_opacification_raises_hu(self, slice_and_mask, kind):
        # Every lesion type *opacifies*: affected parenchyma moves up
        # from aerated lung toward water, never below it.
        image, mask = slice_and_mask
        out = add_lesion(image, mask, kind, rng=np.random.default_rng(3))
        changed = _changed(image, out)
        assert changed.any()
        assert (out[changed] > image[changed]).all()
        assert out[changed].max() <= 150.0  # nothing past soft tissue

    def test_ggo_is_partial_opacification(self, slice_and_mask):
        # Hazy: brightens toward HU_GGO but stays lung-dominated —
        # vessels/airways must remain visible through it.
        image, mask = slice_and_mask
        out = add_lesion(image, mask, "ggo", rng=np.random.default_rng(3))
        changed = _changed(image, out)
        assert HU_LUNG < out[changed].max() < HU_GGO + 100.0

    def test_consolidation_reaches_soft_tissue(self, slice_and_mask):
        image, mask = slice_and_mask
        out = add_lesion(image, mask, "consolidation",
                         rng=np.random.default_rng(3))
        changed = _changed(image, out)
        assert out[changed].max() == pytest.approx(HU_CONSOLIDATION, abs=30.0)

    def test_crazy_paving_brighter_than_plain_ggo(self, slice_and_mask):
        # The reticular grid rides on top of the haze.
        image, mask = slice_and_mask
        ggo = add_lesion(image, mask, "ggo", rng=np.random.default_rng(3))
        paving = add_lesion(image, mask, "crazy_paving",
                            rng=np.random.default_rng(3))
        assert paving[mask].max() > ggo[mask].max()

    def test_nodule_is_dense_and_small(self, slice_and_mask):
        image, mask = slice_and_mask
        out = add_lesion(image, mask, "nodule", rng=np.random.default_rng(3))
        changed = _changed(image, out)
        assert 0 < changed.sum() < mask.sum() * 0.05
        assert out[changed].max() == pytest.approx(40.0, abs=10.0)

    def test_diffuse_pneumonia_spreads_widely(self, slice_and_mask):
        # Many scattered foci — more of the lung touched than any
        # single focal COVID lesion.
        image, mask = slice_and_mask
        rng = np.random.default_rng(3)
        out = add_lesion(image, mask, "diffuse_pneumonia", rng=rng)
        focal = add_lesion(image, mask, "ggo", rng=np.random.default_rng(3))
        assert _changed(image, out).sum() > _changed(image, focal).sum()


class TestRegistry:
    def test_covid_menu_is_subset(self):
        assert set(COVID_LESION_TYPES) <= set(LESION_TYPES)
        assert "nodule" not in COVID_LESION_TYPES

    def test_unknown_kind_lists_choices(self, slice_and_mask):
        image, mask = slice_and_mask
        with pytest.raises(KeyError, match="ggo"):
            add_lesion(image, mask, "cavitation")
