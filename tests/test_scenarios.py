"""Tests for the scanner-variation stress suite (``repro.scenarios``)."""

import numpy as np
import pytest

from repro.data import chest_volume
from repro.scenarios import (
    SCENARIOS,
    ScanScenario,
    get_scenario,
    reconstruct_volume,
    run_scenario_suite,
    run_scenarios_bench,
    scenario_names,
)


class TestScanScenario:
    def test_builtin_sweep_covers_all_axes(self):
        names = scenario_names()
        assert names[0] == "reference"
        assert len(names) == len(set(names))
        assert any(s.dose_fraction < 1.0 for s in SCENARIOS)
        assert any(s.geometry_scale < 1.0 for s in SCENARIOS)
        assert any(s.electronic_noise_hu > 0.0 for s in SCENARIOS)

    def test_reference_is_identity_protocol(self):
        ref = get_scenario("reference")
        assert ref.dose_fraction == 1.0
        assert ref.geometry_scale == 1.0
        assert ref.electronic_noise_hu == 0.0

    def test_unknown_name_lists_valid(self):
        with pytest.raises(ValueError, match="reference"):
            get_scenario("ultra_low_dose")

    @pytest.mark.parametrize("kwargs", [
        dict(dose_fraction=0.0), dict(dose_fraction=1.5),
        dict(geometry_scale=0.0), dict(electronic_noise_hu=-1.0),
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScanScenario("bad", "invalid", **kwargs)


class TestReconstruction:
    def test_deterministic_given_rng(self):
        vol = chest_volume(32, 2, covid=True, rng=np.random.default_rng(0))
        scenario = get_scenario("quarter_dose")
        a = reconstruct_volume(vol, scenario, np.random.default_rng(1))
        b = reconstruct_volume(vol, scenario, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_electronic_noise_raises_error_floor(self):
        vol = chest_volume(32, 2, covid=True, rng=np.random.default_rng(0))
        clean = reconstruct_volume(vol, get_scenario("reference"),
                                   np.random.default_rng(1))
        noisy = reconstruct_volume(vol, get_scenario("electronic_noise"),
                                   np.random.default_rng(1))
        assert np.mean((noisy - vol) ** 2) > np.mean((clean - vol) ** 2)


@pytest.fixture(scope="module")
def suite_scores():
    return run_scenario_suite(num_volumes=2, size=32, num_slices=4, seed=0)


class TestSuite:
    def test_scores_every_scenario(self, suite_scores):
        assert set(suite_scores) == set(scenario_names())
        for score in suite_scores.values():
            assert score.volumes == 2
            assert 0.0 <= score.lung_dice <= 1.0
            assert 0.0 <= score.severity_accuracy <= 1.0
            assert score.quantify_mae_pp >= 0.0

    def test_suite_is_deterministic(self, suite_scores):
        again = run_scenario_suite(num_volumes=2, size=32, num_slices=4,
                                   seed=0)
        assert {k: v.as_dict() for k, v in suite_scores.items()} == \
            {k: v.as_dict() for k, v in again.items()}

    def test_worst_case_degrades_reconstruction(self, suite_scores):
        assert suite_scores["combined"].psnr_db < \
            suite_scores["reference"].psnr_db
        assert suite_scores["sparse_view"].psnr_db < \
            suite_scores["reference"].psnr_db

    def test_reference_quantification_within_gate(self, suite_scores):
        from repro.scenarios import QUANTIFY_MAE_GATE_PP

        assert suite_scores["reference"].quantify_mae_pp <= \
            QUANTIFY_MAE_GATE_PP


class TestBench:
    def test_quick_bench_passes_gates(self):
        payload = run_scenarios_bench(quick=True)
        assert payload["gates_ok"]
        assert set(payload["gates"]) == {"quantify_error", "degradation",
                                         "kind_parity"}
        for mode in ("staged", "dag"):
            arm = payload["serve"][mode]
            assert arm["trace_parity"]
            assert set(arm["kinds"]) == {"diagnosis", "monitoring",
                                         "quantify"}
            for block in arm["kinds"].values():
                assert block["completed"] > 0
