"""Tests for the multi-region pandemic-serving fleet (``repro.fleet``)."""

import json

import pytest

from repro.des import EventLoop
from repro.fleet import (
    COST_PER_HOUR,
    AutoscalerConfig,
    FleetEngine,
    RegionConfig,
    RegionLoop,
    RouterConfig,
    WanCostModel,
    region_cost,
)
from repro.resilience import FaultConfig, ResilienceConfig, RetryPolicy
from repro.serve.metrics import fleet_block, is_fleet_trace, summarize_fleet_trace
from repro.telemetry import TelemetryEvent, export_jsonl, load_jsonl


def small_regions(**north_kw):
    """A tiny 3-region scenario: north undersized, neighbours idle-ish."""
    north = dict(name="north", fleet="Nvidia T4 GPU", r0=7.0,
                 onset_day=0, population=12e6, requests=100, seed=1,
                 queue_capacity=32)
    north.update(north_kw)
    return [
        RegionConfig(**north),
        RegionConfig(name="central", r0=5.5, onset_day=30, population=8e6,
                     requests=30, seed=2),
        RegionConfig(name="south", r0=4.5, onset_day=60, population=5e6,
                     requests=20, seed=3),
    ]


def run_fleet(regions, horizon_s=40.0, **kw):
    return FleetEngine(regions, horizon_s=horizon_s, **kw).run()


def total(summary, key):
    return sum(int(r[key]) for r in summary["regions"].values())


def missed(summary):
    return sum(int(r["slo_violations"]) + int(r["shed_queue_full"])
               + int(r["shed_timeout"]) + int(r["shed_fault"])
               for r in summary["regions"].values())


class TestRegionLoop:
    def test_pending_is_region_local(self):
        loop = EventLoop()
        a = RegionLoop(loop, "a")
        b = RegionLoop(loop, "b")
        seen = []
        a.on("tick", lambda p, now: seen.append(("a", p)))
        b.on("tick", lambda p, now: seen.append(("b", p)))
        a.schedule(1.0, "tick", 1)
        a.schedule(2.0, "tick", 2)
        assert a.pending == 2 and b.pending == 0
        assert loop.pending == 2
        loop.run()
        assert a.pending == 0 and seen == [("a", 1), ("a", 2)]

    def test_kinds_are_namespaced(self):
        loop = EventLoop()
        a = RegionLoop(loop, "a")
        b = RegionLoop(loop, "b")
        seen = []
        a.on("tick", lambda p, now: seen.append("a"))
        b.on("tick", lambda p, now: seen.append("b"))
        b.schedule(1.0, "tick")
        loop.run()
        assert seen == ["b"]
        assert a.pending_of("tick") == 0 and b.pending_of("tick") == 0


class TestFleetEngine:
    def test_rejects_duplicate_region_names(self):
        with pytest.raises(ValueError, match="unique"):
            FleetEngine([RegionConfig(name="x"), RegionConfig(name="x")])

    def test_conservation_per_region(self):
        report = run_fleet(small_regions())
        summary = report.summary()
        for name, r in summary["regions"].items():
            shed = (r["shed_queue_full"] + r["shed_timeout"]
                    + r["shed_fault"])
            assert r["completed"] + shed == r["requests"], name
        # Spillover moves requests between regions but never loses any.
        assert total(summary, "requests") == sum(
            c.requests for c in report.configs.values())

    def test_shared_loop_run_is_deterministic(self):
        a = run_fleet(small_regions()).summary()
        b = run_fleet(small_regions()).summary()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_spillover_beats_isolated_same_seed(self):
        isolated = run_fleet(small_regions(),
                             router=RouterConfig(spillover=False)).summary()
        spilled = run_fleet(small_regions(),
                            router=RouterConfig(spillover=True)).summary()
        assert spilled["fleet"]["spillover"] > 0
        assert missed(spilled) < missed(isolated)

    def test_requests_stay_local_while_healthy(self):
        # Plenty of capacity everywhere: nothing should spill.
        regions = [RegionConfig(name=n, requests=10, seed=i)
                   for i, n in enumerate(("east", "west"))]
        report = run_fleet(regions, router=RouterConfig(spillover=True))
        assert report.summary()["fleet"]["spillover"] == 0
        assert report.delivered["east"] == 10
        assert report.delivered["west"] == 10

    def test_spilled_requests_pay_wan_latency(self):
        wan = WanCostModel(rtt_s=5.0, gbps=1.0)   # absurd RTT to stand out
        report = run_fleet(small_regions(), wan=wan)
        spills = [e for e in report.events if e.kind == "spill"]
        assert spills, "scenario must actually spill"
        assert all(e.payload["wan_s"] >= 5.0 for e in spills)
        # A spilled request's end-to-end latency includes the WAN leg.
        spilled_ids = {e.payload["request"] for e in spills}
        # Cache-hit dedup completions report the lookup latency, so
        # only full executions witness the end-to-end WAN charge.
        done = {e.payload["request"]: e.payload["latency_s"]
                for e in report.events
                if e.kind == "request_done" and not e.payload["from_cache"]}
        completed_spills = spilled_ids & set(done)
        assert completed_spills
        assert all(done[rid] >= 5.0 for rid in completed_spills)

    def test_wan_cost_model_charges_bytes(self):
        wan = WanCostModel(rtt_s=0.1, gbps=1.0)
        assert wan.delay_s(0) == pytest.approx(0.1)
        assert wan.delay_s(1e9 / 8) == pytest.approx(1.1)
        with pytest.raises(ValueError):
            WanCostModel(rtt_s=-1.0)


class TestAutoscaler:
    def autoscaled(self, **cfg_kw):
        cfg = dict(tick_s=1.0, queue_high=0.25, scale_up_step=3,
                   max_devices=8, provision_delay_s=2.0)
        cfg.update(cfg_kw)
        return run_fleet(small_regions(),
                         router=RouterConfig(spillover=False),
                         autoscaler=AutoscalerConfig(**cfg))

    def test_scale_up_provisions_after_lag(self):
        report = self.autoscaled(provision_delay_s=4.0)
        ups = [e for e in report.events if e.kind == "scale_up"]
        provs = [e for e in report.events if e.kind == "provision"]
        assert ups and provs
        # Every provision lands exactly provision_delay_s after a
        # scale-up decision in the same region.
        decided = {(e.payload["region"], round(e.payload["ready_at"], 6))
                   for e in ups}
        for p in provs:
            assert (p.payload["region"], round(p.t, 6)) in decided

    def test_autoscaler_restores_slo_attainment(self):
        fixed = run_fleet(small_regions(),
                          router=RouterConfig(spillover=False)).summary()
        scaled = self.autoscaled().summary()
        assert missed(scaled) < missed(fixed)
        assert scaled["fleet"]["devices_provisioned"] > 0

    def test_peak_devices_bounded_by_max(self):
        report = self.autoscaled(max_devices=3)
        for peak in report.peak_devices.values():
            assert peak <= 3

    def test_scale_down_retires_idle_clones(self):
        report = self.autoscaled(scale_down_ticks=2)
        downs = [e for e in report.events if e.kind == "decommission"]
        assert downs, "calm tail should retire grown clones"
        fleet = report.summary()["fleet"]
        assert fleet["devices_decommissioned"] == len(downs)

    def test_warmup_delays_first_dispatch(self):
        report = self.autoscaled(warmup_s=3.0, provision_delay_s=2.0)
        provs = [e for e in report.events if e.kind == "provision"]
        assert provs and all(e.payload["warmup_s"] == 3.0 for e in provs)

    def test_crashed_base_fleet_is_replaced_and_routed_around(self):
        resilience = ResilienceConfig(
            faults=FaultConfig(transient_rate=0.0, straggler_rate=0.0,
                               reconfig_rate=0.0,
                               crash_times={"Nvidia T4 GPU @north": 8.0}),
            retry=RetryPolicy())
        report = run_fleet(
            small_regions(), router=RouterConfig(spillover=True),
            autoscaler=AutoscalerConfig(tick_s=1.0, queue_high=0.25,
                                        scale_up_step=3, max_devices=6),
            resilience=resilience)
        summary = report.summary()
        # The region is not a black hole: spillover and/or replacement
        # capacity keep the fleet-wide miss count tiny.
        assert missed(summary) <= 2
        assert (summary["fleet"]["spillover"] > 0
                or summary["fleet"]["devices_provisioned"] > 0)


class TestCostAccounting:
    def test_region_cost_matches_billed_seconds(self):
        engine = FleetEngine(small_regions(), horizon_s=40.0)
        rep = engine.run()
        for name, region in engine.regions.items():
            workers = region.engine.scheduler.all_workers
            bill = region_cost(workers, rep.makespan_s)
            expect = sum(
                w.billed_s(rep.makespan_s) / 3600.0
                * COST_PER_HOUR[w.spec.device_type] for w in workers)
            assert bill["cost_usd"] == pytest.approx(expect, abs=1e-6)
            assert rep.costs[name] == bill

    def test_static_extra_devices_bill_from_time_zero(self):
        base = run_fleet(small_regions())
        padded = run_fleet(small_regions(static_extra=2))
        assert (padded.costs["north"]["cost_usd"]
                > base.costs["north"]["cost_usd"])


class TestFleetTrace:
    def test_jsonl_round_trip_is_bit_identical(self, tmp_path):
        report = run_fleet(
            small_regions(),
            autoscaler=AutoscalerConfig(tick_s=1.0, queue_high=0.25,
                                        scale_up_step=3, max_devices=8))
        path = tmp_path / "fleet.jsonl"
        export_jsonl(str(path), report.events)
        loaded = load_jsonl(str(path))
        assert is_fleet_trace(loaded)
        live = summarize_fleet_trace(report.events)
        replayed = summarize_fleet_trace(loaded)
        assert json.dumps(live, sort_keys=True) == json.dumps(
            replayed, sort_keys=True)

    def test_trace_fleet_block_matches_live_summary(self):
        report = run_fleet(small_regions())
        assert (summarize_fleet_trace(report.events)["fleet"]
                == report.summary()["fleet"])

    def test_fleet_block_recounts_synthetic_events(self):
        events = [
            TelemetryEvent(0, 0.0, "region_fleet", "t", {"region": "a",
                                                         "devices": 2}),
            TelemetryEvent(1, 0.0, "region_fleet", "t", {"region": "b",
                                                         "devices": 1}),
            TelemetryEvent(2, 1.0, "spill", "t",
                           {"region": "a", "target": "b", "nbytes": 100,
                            "replicated_bytes": 40, "wan_s": 0.1,
                            "request": 7, "kind_of": "diagnosis"}),
            TelemetryEvent(3, 2.0, "provision", "t",
                           {"region": "b", "device": "d +0", "active": 2,
                            "warmup_s": 0.0}),
            TelemetryEvent(4, 3.0, "decommission", "t",
                           {"region": "b", "device": "d +0", "active": 1}),
            TelemetryEvent(5, 4.0, "region_cost", "t",
                           {"region": "a", "cost_usd": 0.5,
                            "device_hours": 0.25}),
            TelemetryEvent(6, 5.0, "done", "t", {"region": "a",
                                                 "request_id": 7}),
        ]
        block = fleet_block(events)
        assert block["spillover"] == 1
        assert block["wan_bytes"] == 100
        assert block["artifact_replication_bytes"] == 40
        assert block["peak_devices"] == {"a": 2, "b": 2}
        assert block["devices_provisioned"] == 1
        assert block["devices_decommissioned"] == 1
        assert block["cost_total_usd"] == pytest.approx(0.5)
        assert block["makespan_s"] == 5.0

    def test_is_fleet_trace_rejects_single_region_traces(self):
        events = [TelemetryEvent(0, 0.0, "request_done", "t",
                                 {"request": 1, "latency_s": 0.5})]
        assert not is_fleet_trace(events)


class TestArtifactReplication:
    def test_replication_keeps_monitoring_fast_path(self):
        # DAG mode + replicate_artifacts: the fleet shares one artifact
        # store, so spilled monitoring re-reads still hit the
        # classify-only fast path — billed as replication bytes.
        regions = small_regions(monitor_fraction=0.6, dup_fraction=0.6)
        plain = run_fleet(
            regions, mode="dag",
            router=RouterConfig(spillover=True)).summary()
        shared = run_fleet(
            regions, mode="dag",
            router=RouterConfig(spillover=True,
                                replicate_artifacts=True)).summary()
        assert plain["fleet"]["artifact_replication_bytes"] == 0
        if shared["fleet"]["spillover"] > 0:
            assert shared["fleet"]["artifact_replication_bytes"] > 0
