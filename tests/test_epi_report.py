"""Tests for the epidemic model (Fig. 2) and the report utilities."""

import numpy as np
import pytest

from repro.epi import SEIRParams, VariantSEIRModel, VariantSpec, uk_delta_wave_scenario
from repro.report import ascii_plot, format_table, series_to_csv


class TestSEIR:
    def test_single_variant_epidemic_curve(self):
        m = VariantSEIRModel([VariantSpec("X", r0=3.0, seed_fraction=1e-4)])
        out = m.run(120)
        c = out["cases_per_million"]
        peak = int(np.argmax(c))
        assert 5 < peak < 115          # rises then falls
        assert c[-1] < c[peak] * 0.5

    def test_subcritical_variant_dies_out(self):
        def locked(day):
            return 0.2               # R_eff = 3·0.2 < 1

        m = VariantSEIRModel([VariantSpec("X", r0=3.0, seed_fraction=1e-3)],
                             contact_schedule=locked)
        c = m.run(100)["cases_per_million"]
        assert c[80] < c[5]

    def test_susceptibles_monotone_decreasing(self):
        m = VariantSEIRModel([VariantSpec("X", r0=3.0, seed_fraction=1e-4)])
        s = m.run(60)["S"]
        assert np.all(np.diff(s[1:]) <= 1e-12)

    def test_variant_shares_sum_to_one_when_active(self):
        m = uk_delta_wave_scenario()
        out = m.run(200)
        total = out["variant_share:Alpha"] + out["variant_share:Delta"]
        active = out["cases_per_million"] > 0.1
        assert np.allclose(total[active], 1.0, atol=1e-9)

    def test_uk_scenario_reproduces_fig2_shape(self):
        """Fig. 2: 3rd wave declines, trough, Delta-driven 4th wave."""
        out = uk_delta_wave_scenario().run(240)
        c = out["cases_per_million"]
        assert c[60] < c[5] * 0.6                  # restrictions suppress wave 3
        trough = c[60:140].min()
        assert trough < c[5] * 0.2
        assert c[239] > 20 * max(trough, 0.5)      # 4th wave explodes
        assert out["variant_share:Delta"][239] > 0.95  # "98% of confirmed cases"

    def test_delta_grows_faster_than_alpha_after_easing(self):
        out = uk_delta_wave_scenario().run(240)
        share = out["variant_share:Delta"]
        assert share[239] > share[180] > share[150]

    def test_vaccination_reduces_final_wave(self):
        def contacts(day):
            return 0.7

        kw = dict(variants=[VariantSpec("X", r0=3.0, seed_fraction=1e-4)],
                  contact_schedule=contacts)
        unvax = VariantSEIRModel(**kw).run(150)["cases_per_million"]
        vax = VariantSEIRModel(vaccination_rate=0.01, vaccination_cap=0.8, **kw).run(150)[
            "cases_per_million"
        ]
        assert vax.sum() < unvax.sum()

    def test_requires_variants(self):
        with pytest.raises(ValueError):
            VariantSEIRModel([])

    def test_params_derived_rates(self):
        p = SEIRParams(incubation_days=4.0, infectious_days=5.0)
        assert np.isclose(p.sigma, 0.25)
        assert np.isclose(p.gamma, 0.2)


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 23.5, "b": None}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "–" in out  # None rendering

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_bool(self):
        out = format_table([{"x": True, "y": False}])
        assert "✓" in out and "✗" in out

    def test_ascii_plot_contains_marks(self):
        out = ascii_plot({"s": [1, 2, 3, 2, 1]}, width=20, height=5)
        assert "*" in out
        assert "s" in out

    def test_ascii_plot_multi_series(self):
        out = ascii_plot({"a": [1, 2], "b": [2, 1]}, width=10, height=4)
        assert "*" in out and "o" in out

    def test_ascii_plot_log_scale(self):
        out = ascii_plot({"s": [1, 10, 100]}, width=10, height=4, logy=True)
        assert "100" in out

    def test_ascii_plot_empty(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_series_to_csv(self, tmp_path):
        path = str(tmp_path / "out.csv")
        series_to_csv({"a": [1.0, 2.0], "b": [3.0, 4.0]}, path, x=[0, 1])
        lines = open(path).read().strip().splitlines()
        assert lines[0] == "x,a,b"
        assert lines[1] == "0,1,3"
        assert len(lines) == 3
