"""Tests for image-quality and classification metrics (Eqs. 3-5)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    ConfusionMatrix,
    accuracy,
    auc_roc,
    confusion_matrix,
    mse,
    ms_ssim,
    optimal_threshold,
    psnr,
    roc_curve,
    sensitivity,
    specificity,
    ssim,
)


class TestImageMetrics:
    def test_mse_zero_for_identical(self, rng):
        x = rng.random((8, 8))
        assert mse(x, x) == 0.0

    def test_mse_value(self):
        assert mse(np.zeros((2, 2)), np.ones((2, 2))) == 1.0

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_psnr_infinite_identical(self, rng):
        x = rng.random((8, 8))
        assert psnr(x, x) == float("inf")

    def test_psnr_monotone_in_noise(self, rng):
        x = rng.random((16, 16))
        assert psnr(x, x + 0.01) > psnr(x, x + 0.1)

    def test_ssim_bounds(self, rng):
        a, b = rng.random((32, 32)), rng.random((32, 32))
        s = ssim(a, b, window_size=7)
        assert -1.0 <= s <= 1.0
        assert np.isclose(ssim(a, a, window_size=7), 1.0)

    def test_ssim_symmetry(self, rng):
        a, b = rng.random((24, 24)), rng.random((24, 24))
        assert np.isclose(ssim(a, b, window_size=7), ssim(b, a, window_size=7))

    def test_ssim_luminance_shift_penalized(self, rng):
        a = rng.random((32, 32))
        assert ssim(a, a + 0.5, window_size=7, data_range=1.0) < 0.9

    def test_ms_ssim_size_guard(self, rng):
        with pytest.raises(ValueError):
            ms_ssim(rng.random((16, 16)), rng.random((16, 16)), levels=5)

    def test_ms_ssim_identical(self, rng):
        a = rng.random((64, 64))
        assert np.isclose(ms_ssim(a, a, levels=2, window_size=7), 1.0)

    def test_ms_ssim_orders_degradations(self, rng):
        a = rng.random((64, 64))
        mild = np.clip(a + rng.normal(0, 0.03, a.shape), 0, 1)
        heavy = np.clip(a + rng.normal(0, 0.3, a.shape), 0, 1)
        assert ms_ssim(a, heavy, levels=2, window_size=7) < ms_ssim(a, mild, levels=2, window_size=7)


class TestConfusionMatrix:
    def test_counts(self):
        labels = np.array([1, 1, 0, 0, 1])
        preds = np.array([1, 0, 0, 1, 1])
        cm = confusion_matrix(labels, preds)
        assert (cm.tp, cm.fn, cm.tn, cm.fp) == (2, 1, 1, 1)
        assert cm.total == 5

    def test_eq3_accuracy(self):
        cm = ConfusionMatrix(tp=30, fp=4, fn=5, tn=56)
        assert np.isclose(cm.accuracy, 86 / 95)

    def test_eq4_sensitivity(self):
        cm = ConfusionMatrix(tp=30, fp=0, fn=6, tn=0)
        assert np.isclose(cm.sensitivity, 30 / 36)

    def test_eq5_fpr_and_specificity(self):
        cm = ConfusionMatrix(tp=0, fp=10, fn=0, tn=49)
        assert np.isclose(cm.fpr, 10 / 59)
        assert np.isclose(cm.specificity, 49 / 59)
        assert np.isclose(cm.fpr + cm.specificity, 1.0)

    def test_degenerate_rates(self):
        cm = ConfusionMatrix(tp=0, fp=0, fn=0, tn=5)
        assert cm.sensitivity == 0.0

    def test_helpers_agree(self, rng):
        labels = (rng.random(50) > 0.5).astype(int)
        preds = (rng.random(50) > 0.5).astype(int)
        cm = confusion_matrix(labels, preds)
        assert accuracy(labels, preds) == cm.accuracy
        assert sensitivity(labels, preds) == cm.sensitivity
        assert specificity(labels, preds) == cm.specificity

    def test_table9_render(self):
        table = ConfusionMatrix(1, 2, 3, 4).as_table()
        assert "TP=1" in table and "TN=4" in table

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 2]), np.array([0, 1]))
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0.5, 1.0]))


class TestROC:
    def test_perfect_classifier(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_roc(labels, scores) == 1.0

    def test_random_scores_near_half(self, rng):
        labels = (rng.random(2000) > 0.5).astype(int)
        scores = rng.random(2000)
        assert abs(auc_roc(labels, scores) - 0.5) < 0.05

    def test_inverted_classifier(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_roc(labels, scores) == 0.0

    def test_curve_monotone_and_anchored(self, rng):
        labels = (rng.random(60) > 0.4).astype(int)
        scores = rng.random(60)
        fpr, tpr, thr = roc_curve(labels, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)
        assert np.all(np.diff(thr) <= 0)

    def test_needs_both_classes(self):
        with pytest.raises(ValueError):
            roc_curve(np.ones(4, dtype=int), np.random.rand(4))

    def test_tied_scores_collapsed(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        fpr, tpr, _ = roc_curve(labels, scores)
        assert len(fpr) == 2  # origin + single operating point

    @given(st.integers(2, 30))
    def test_auc_invariant_to_monotone_transform(self, n):
        rng = np.random.default_rng(n)
        labels = np.array([0, 1] * n)
        scores = rng.random(2 * n)
        a = auc_roc(labels, scores)
        b = auc_roc(labels, scores * 10.0 + 3.0)
        assert np.isclose(a, b)


class TestOptimalThreshold:
    def test_finds_separating_point(self):
        labels = np.array([0, 0, 0, 1, 1])
        scores = np.array([0.01, 0.02, 0.05, 0.07, 0.9])
        t, acc = optimal_threshold(labels, scores)
        assert acc == 1.0
        assert 0.05 < t <= 0.07

    def test_paper_style_low_threshold(self):
        """A 0.061-style tiny threshold arises when positives score low
        but still above negatives — exactly the paper's Table 9 regime."""
        labels = np.concatenate([np.ones(36), np.zeros(59)]).astype(int)
        scores = np.concatenate([
            np.linspace(0.062, 0.4, 36),   # positives, low absolute scores
            np.linspace(0.0, 0.06, 59),    # negatives below 0.061
        ])
        t, acc = optimal_threshold(labels, scores)
        assert acc == 1.0
        assert t < 0.1
