"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "Mayo Clinic" in out and "LIDC" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "Nvidia V100 GPU" in out and "Table 7" in out

    def test_epidemic(self, capsys):
        assert main(["epidemic", "--days", "100"]) == 0
        out = capsys.readouterr().out
        assert "cases per million" in out
        assert "Delta share" in out

    def test_simulate_writes_pairs(self, tmp_path, capsys):
        out_file = str(tmp_path / "pairs.npz")
        assert main(["simulate", "--count", "2", "--size", "32",
                     "--blank-scan", "1000", "--output", out_file]) == 0
        with np.load(out_file) as data:
            assert data["low_dose"].shape == (2, 1, 32, 32)
            assert data["full_dose"].shape == (2, 1, 32, 32)

    def test_diagnose_synthetic(self, capsys):
        assert main(["diagnose", "--size", "16", "--slices", "16", "--covid"]) == 0
        out = capsys.readouterr().out
        assert "P(COVID-19)" in out
        assert "verdict" in out

    def test_diagnose_from_file(self, tmp_path, capsys):
        from repro.data import chest_volume

        path = str(tmp_path / "scan.npy")
        np.save(path, chest_volume(16, 16, rng=np.random.default_rng(0)))
        assert main(["diagnose", "--input", path, "--no-enhancement"]) == 0

    def test_serve_reports_metrics(self, capsys):
        assert main(["serve", "--requests", "40", "--rate", "10",
                     "--policy", "perf-aware"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "p50" in out and "p95" in out and "p99" in out
        assert "cache" in out and "hit rate" in out
        assert "Nvidia V100 GPU" in out  # per-device utilization lines

    def test_serve_is_deterministic(self, capsys):
        argv = ["serve", "--requests", "30", "--rate", "8", "--seed", "5",
                "--policy", "least-loaded", "--fleet", "gpus"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_serve_writes_json_summary(self, tmp_path, capsys):
        import json

        out_file = str(tmp_path / "serve.json")
        assert main(["serve", "--requests", "25", "--pattern", "burst",
                     "--policy", "round-robin", "--fleet", "V100,T4",
                     "--json", out_file]) == 0
        with open(out_file) as fh:
            summary = json.load(fh)
        assert summary["requests"] == 25
        assert summary["completed"] + summary["shed_queue_full"] + \
            summary["shed_timeout"] + summary["shed_fault"] == 25
        assert "latency_p99_s" in summary and "device_utilization" in summary

    def test_serve_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["serve", "--policy", "fifo"])

    def test_serve_dag_mode(self, capsys):
        assert main(["serve", "--dag", "--requests", "40", "--rate", "10",
                     "--monitor-fraction", "0.3", "--dup-fraction", "0.2",
                     "--queue-capacity", "1000"]) == 0
        out = capsys.readouterr().out
        assert "artifacts" in out and "model swaps" in out
        assert "stage batches" in out

    def test_serve_epi_arrivals(self, capsys):
        assert main(["serve", "--arrivals", "epi", "--requests", "30",
                     "--rate", "8", "--queue-capacity", "1000"]) == 0
        out = capsys.readouterr().out
        assert "epi arrivals" in out

    def test_serve_dag_trace_round_trip(self, tmp_path, capsys):
        """DAG-mode stage events replay through `repro trace summary`."""
        import json

        trace_file = str(tmp_path / "dag.jsonl")
        live_json = str(tmp_path / "live.json")
        replay_json = str(tmp_path / "replay.json")
        assert main(["serve", "--mode", "dag", "--requests", "40",
                     "--rate", "10", "--seed", "3", "--dup-fraction", "0.3",
                     "--queue-capacity", "1000", "--json", live_json,
                     "--trace-out", trace_file]) == 0
        assert main(["trace", "summary", trace_file,
                     "--json", replay_json]) == 0
        assert "stage batches" in capsys.readouterr().out
        with open(live_json) as fh:
            live = json.load(fh)
        with open(replay_json) as fh:
            replay = json.load(fh)
        for key in ("model_swaps", "model_evictions", "stages_skipped",
                    "artifact_entries", "stage_completions"):
            assert replay[key] == live[key], key

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_parser_has_all_commands(self):
        parser = build_parser()
        subs = next(a for a in parser._actions if a.dest == "command")
        assert set(subs.choices) == {"diagnose", "simulate", "tables", "epidemic",
                                     "inventory", "serve", "train", "sweep",
                                     "trace", "bench"}

    def test_serve_trace_round_trip(self, tmp_path, capsys):
        """serve --trace-out → trace summary reproduces the live numbers."""
        import json

        trace_file = str(tmp_path / "trace.jsonl")
        live_json = str(tmp_path / "live.json")
        replay_json = str(tmp_path / "replay.json")
        assert main(["serve", "--requests", "40", "--rate", "10", "--seed", "3",
                     "--json", live_json, "--trace-out", trace_file]) == 0
        assert main(["trace", "summary", trace_file,
                     "--json", replay_json]) == 0
        out = capsys.readouterr().out
        assert "telemetry events" in out
        with open(live_json) as fh:
            live = json.load(fh)
        with open(replay_json) as fh:
            replay = json.load(fh)
        for key in ("requests", "completed", "shed_queue_full", "shed_timeout",
                    "shed_fault", "slo_violations", "makespan_s",
                    "throughput_rps", "latency_p50_s", "latency_p95_s",
                    "latency_p99_s", "latency_mean_s", "latency_max_s",
                    "cache_hits", "retries", "degraded_completed"):
            assert replay[key] == live[key], key

    def test_train_healthy_run(self, capsys):
        assert main(["train", "--ranks", "4", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 ranks x 2 epochs" in out
        assert "crashes []" in out

    def test_train_chaos_trace_round_trip(self, tmp_path, capsys):
        """train --trace-out → trace summary reproduces the live numbers."""
        import json

        trace_file = str(tmp_path / "train.jsonl")
        live_json = str(tmp_path / "live.json")
        replay_json = str(tmp_path / "replay.json")
        assert main(["train", "--ranks", "6", "--epochs", "2",
                     "--faults", "crash", "--regrow-after", "1.0",
                     "--json", live_json, "--trace-out", trace_file]) == 0
        assert main(["trace", "summary", trace_file,
                     "--json", replay_json]) == 0
        out = capsys.readouterr().out
        assert "training trace" in out
        with open(live_json) as fh:
            live = json.load(fh)
        with open(replay_json) as fh:
            replay = json.load(fh)
        assert replay == live
        assert live["rank_crashes"]  # the chaos actually happened
        assert live["shrinks"] >= 1 and live["regrows"] >= 1

    def test_train_fixed_ring_abort_exits_nonzero(self, capsys):
        assert main(["train", "--ranks", "4", "--epochs", "2",
                     "--faults", "crash", "--no-elastic"]) == 1
        out = capsys.readouterr().out
        assert "ABORTED" in out

    def test_sweep_writes_consolidated_artifact(self, tmp_path, capsys):
        import json

        out_file = str(tmp_path / "SWEEP_training.json")
        assert main(["sweep", "--quick", "--ranks", "2,4",
                     "--profiles", "none,crash", "--compress", "none",
                     "--out", out_file]) == 0
        with open(out_file) as fh:
            payload = json.load(fh)
        assert payload["gates_ok"]
        assert len(payload["cells"]) == 4  # 2 ranks x 2 profiles x 1 comp
