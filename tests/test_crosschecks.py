"""Cross-module consistency checks and late-added API tests."""

import numpy as np
import pytest

from repro.ct import paper_geometry, simulate_dose_fraction_pair
from repro.distributed import ClusterSpec, TrainingTimeModel
from repro.hetero import InferenceEngine, NVIDIA_V100, PerfModel
from repro.models import DDnet, ddnet_layer_table
from repro.tensor import Tensor, no_grad
from repro.tensor import functional as F


def disk(n=32, value=0.02):
    ys, xs = np.mgrid[0:n, 0:n]
    return np.where(np.hypot(xs - n / 2 + 0.5, ys - n / 2 + 0.5) < n * 0.3, value, 0.0)


class TestDoseFractionPair:
    def test_quarter_dose_noisier(self):
        img = disk()
        geo = paper_geometry(0.1)
        full, quarter = simulate_dose_fraction_pair(
            img, geo, full_blank_scan=5e3, dose_fraction=0.25,
            pixel_size=10.0, rng=np.random.default_rng(0),
        )
        assert np.abs(quarter - img).mean() > np.abs(full - img).mean()

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            simulate_dose_fraction_pair(disk(), paper_geometry(0.1), dose_fraction=0.0)

    def test_fraction_one_statistically_equal(self):
        img = disk()
        geo = paper_geometry(0.1)
        full, frac = simulate_dose_fraction_pair(
            img, geo, full_blank_scan=5e3, dose_fraction=1.0,
            pixel_size=10.0, rng=np.random.default_rng(1),
        )
        # Same dose: error magnitudes comparable (independent noise draws).
        e1, e2 = np.abs(full - img).mean(), np.abs(frac - img).mean()
        assert 0.5 < e1 / e2 < 2.0


class TestSymbolicTableMatchesRealShapes:
    def test_layer_table_consistent_with_forward(self):
        """The symbolic Table 2 trace must agree with real tensor shapes."""
        size = 32
        net = DDnet(rng=np.random.default_rng(0)).eval()
        rows = {r["layer"]: r["output_size"] for r in ddnet_layer_table(size, net)}

        shapes = {}
        with no_grad():
            x = Tensor(np.zeros((1, 1, size, size)))
            stem = net.stem(x)
            shapes["Convolution 1"] = stem.shape
            h = stem
            for i, (block, transition, pool) in enumerate(
                zip(net.blocks, net.transitions, net.pools)
            ):
                h = pool(h)
                shapes[f"Pooling {i + 1}"] = h.shape
                h = block(h)
                shapes[f"Dense Block {i + 1}"] = h.shape
                h = transition(h)
                shapes[f"Convolution {i + 2}"] = h.shape
        for layer, shape in shapes.items():
            expect = f"{shape[2]}x{shape[3]}x{shape[1]}"
            assert rows[layer] == expect, (layer, rows[layer], expect)


class TestMultiGpuCluster:
    def test_gpus_per_node_increase_world_size(self):
        c = ClusterSpec(num_nodes=2, gpus_per_node=4)
        assert c.world_size == 8

    def test_more_gpus_faster_at_fixed_batch(self):
        m = TrainingTimeModel()
        single = m.estimate(ClusterSpec(4, gpus_per_node=1), 16, 50)
        dual = m.estimate(ClusterSpec(4, gpus_per_node=4), 16, 50)
        assert dual.total_time_s < single.total_time_s


class TestDtypeHandling:
    def test_float32_ops_preserve_dtype(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), dtype=np.float32)
        b = Tensor(np.ones((2, 2), dtype=np.float32), dtype=np.float32)
        assert (a + b).dtype == np.float32
        assert (a @ b).dtype == np.float32

    def test_default_promotes_to_float64(self):
        assert Tensor(np.ones(2, dtype=np.float32)).dtype == np.float64
        assert Tensor([1, 2]).dtype.kind == "i"

    def test_int_inputs_to_conv_rejected_gracefully(self):
        x = Tensor(np.ones((1, 1, 4, 4)))
        w = Tensor(np.ones((1, 1, 3, 3)))
        out = F.conv2d(x, w, padding=1)
        assert out.dtype.kind == "f"


class TestEngineVsPerfModelConsistency:
    def test_trace_time_matches_model_prediction(self, rng):
        """The engine's accumulated time must equal the PerfModel's
        prediction for the same schedule (same rates, same counts)."""
        net = DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                    dense_kernel=3, deconv_kernel=3,
                    rng=np.random.default_rng(0)).eval()
        pm = PerfModel()
        eng = InferenceEngine(net, NVIDIA_V100, perf_model=pm)
        x = rng.random((1, 1, 16, 16))
        _, trace = eng.run(x)
        from repro.hetero import ddnet_kernel_schedule

        sched = ddnet_kernel_schedule(input_size=16, batch=1, base_channels=4,
                                      growth=4, num_blocks=2, layers_per_block=2,
                                      dense_kernel=3, deconv_kernel=3)
        pred = pm.predict(NVIDIA_V100, schedule=sched)
        overhead = len(trace.launches) * NVIDIA_V100.launch_overhead_us * 1e-6
        # Conv/deconv counts agree exactly; "other" differs slightly
        # because the dense blocks batch-normalize their growing
        # *concatenated inputs* (pre-activation) while the schedule
        # charges BN on conv outputs — a few percent of a tiny term.
        got = trace.group_counts()
        from repro.hetero.schedule import schedule_totals

        st = schedule_totals(sched)
        assert got["convolution"] == st["convolution"]
        assert got["deconvolution"] == st["deconvolution"]
        assert trace.modelled_time_s - overhead == pytest.approx(pred.total_s, rel=0.05)
