"""Tests for iterative reconstruction (SART) and sparse-view utilities."""

import numpy as np
import pytest

from repro.ct import (
    fbp_reconstruct,
    forward_project,
    sart_reconstruct,
    siddon_backproject,
    siddon_raycast,
    subsample_views,
)
from repro.ct.geometry import FanBeamGeometry, ParallelBeamGeometry


def disk(n=32, value=0.03):
    ys, xs = np.mgrid[0:n, 0:n]
    r = np.hypot(xs - n / 2 + 0.5, ys - n / 2 + 0.5)
    img = np.where(r < n * 0.35, value, 0.0)
    img[r < n * 0.12] = value * 1.8
    return img


class TestAdjoint:
    def test_exact_adjointness(self, rng):
        """<A x, y> == <x, A^T y> to machine precision."""
        img = rng.random((12, 12))
        starts = rng.uniform(-30, -20, (15, 2))
        ends = rng.uniform(20, 30, (15, 2))
        y = rng.random(15)
        lhs = (siddon_raycast(img, starts, ends) * y).sum()
        rhs = (img * siddon_backproject(y, starts, ends, (12, 12))).sum()
        assert np.isclose(lhs, rhs, rtol=1e-10)

    def test_adjoint_with_pixel_size(self, rng):
        img = rng.random((8, 8))
        starts = rng.uniform(-40, -30, (6, 2))
        ends = rng.uniform(30, 40, (6, 2))
        y = rng.random(6)
        lhs = (siddon_raycast(img, starts, ends, 2.5) * y).sum()
        rhs = (img * siddon_backproject(y, starts, ends, (8, 8), 2.5)).sum()
        assert np.isclose(lhs, rhs, rtol=1e-10)

    def test_missing_rays_deposit_nothing(self):
        out = siddon_backproject([5.0], [[-100.0, 50.0]], [[100.0, 50.0]], (8, 8))
        assert np.all(out == 0.0)


class TestSART:
    @pytest.fixture(scope="class")
    def setup(self):
        truth = disk(32)
        geo = ParallelBeamGeometry(num_views=48, num_detectors=65)
        sino = forward_project(truth, geo)
        return truth, geo, sino

    def test_converges_toward_truth(self, setup):
        truth, geo, sino = setup
        rec = sart_reconstruct(sino, geo, 32, iterations=6, relaxation=0.6)
        assert np.abs(rec - truth).mean() < 0.002

    def test_beats_fbp_at_few_views(self, setup):
        truth, _, _ = setup
        sparse = ParallelBeamGeometry(num_views=10, num_detectors=65)
        sino = forward_project(truth, sparse)
        fbp = fbp_reconstruct(sino, sparse, 32)
        sart = sart_reconstruct(sino, sparse, 32, iterations=10, relaxation=0.6)
        assert np.abs(sart - truth).mean() < np.abs(fbp - truth).mean()

    def test_error_decreases_with_iterations(self, setup):
        truth, geo, sino = setup
        e1 = np.abs(sart_reconstruct(sino, geo, 32, iterations=1) - truth).mean()
        e5 = np.abs(sart_reconstruct(sino, geo, 32, iterations=5) - truth).mean()
        assert e5 < e1

    def test_nonnegativity_constraint(self, setup):
        truth, geo, sino = setup
        rec = sart_reconstruct(sino, geo, 32, iterations=3, nonnegativity=True)
        assert rec.min() >= 0.0

    def test_warm_start(self, setup):
        truth, geo, sino = setup
        warm = sart_reconstruct(sino, geo, 32, iterations=2, initial=truth.copy())
        cold = sart_reconstruct(sino, geo, 32, iterations=2)
        assert np.abs(warm - truth).mean() < np.abs(cold - truth).mean()

    def test_shape_validation(self, setup):
        _, geo, _ = setup
        with pytest.raises(ValueError):
            sart_reconstruct(np.zeros((3, 3)), geo, 32)

    def test_iterations_validation(self, setup):
        _, geo, sino = setup
        with pytest.raises(ValueError):
            sart_reconstruct(sino, geo, 32, iterations=0)

    def test_fan_beam_geometry_supported(self):
        truth = disk(24)
        geo = FanBeamGeometry(num_views=60, num_detectors=96, detector_spacing=2.0)
        sino = forward_project(truth, geo)
        rec = sart_reconstruct(sino, geo, 24, iterations=5, relaxation=0.6)
        assert np.abs(rec - truth).mean() < 0.004


class TestSparseView:
    def test_subsample_preserves_range(self):
        geo = ParallelBeamGeometry(num_views=180, num_detectors=65)
        sparse = subsample_views(geo, 6)
        assert sparse.num_views == 30
        assert sparse.angular_range == geo.angular_range
        assert sparse.num_detectors == geo.num_detectors

    def test_factor_validation(self):
        geo = ParallelBeamGeometry()
        with pytest.raises(ValueError):
            subsample_views(geo, 0)

    def test_sparse_view_fbp_degrades(self):
        """Fewer views -> FBP streaking -> larger error (DDnet's original
        motivation, Zhang et al. 2018)."""
        truth = disk(32)
        full = ParallelBeamGeometry(num_views=96, num_detectors=65)
        sparse = subsample_views(full, 12)
        err_full = np.abs(fbp_reconstruct(forward_project(truth, full), full, 32) - truth).mean()
        err_sparse = np.abs(fbp_reconstruct(forward_project(truth, sparse), sparse, 32) - truth).mean()
        assert err_sparse > 1.5 * err_full
