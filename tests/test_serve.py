"""Tests for the ``repro.serve`` inference-serving subsystem."""

import numpy as np
import pytest

from repro.hetero import DEVICES, NVIDIA_T4, NVIDIA_V100, PerfModel
from repro.serve import (
    CACHE_HIT_LATENCY_S,
    SLO,
    AdmissionQueue,
    Batch,
    BatchPolicy,
    DynamicBatcher,
    FleetScheduler,
    ResultCache,
    ScanRequest,
    ServiceTimeModel,
    ServingEngine,
    ShedReason,
    burst_arrivals,
    epidemic_wave_arrivals,
    fleet_from_spec,
    make_workload,
    percentile,
    poisson_arrivals,
)


@pytest.fixture(scope="module")
def service_model():
    return ServiceTimeModel(PerfModel())


def req(i=0, t=0.0, seed=0, **kw):
    return ScanRequest(request_id=i, arrival_s=t, seed=seed, **kw)


# ---------------------------------------------------------------------------
class TestRequests:
    def test_poisson_sorted_and_deterministic(self):
        a = poisson_arrivals(50, 4.0, np.random.default_rng(3))
        b = poisson_arrivals(50, 4.0, np.random.default_rng(3))
        assert np.all(np.diff(a) >= 0) and np.all(a > 0)
        assert np.array_equal(a, b)

    def test_poisson_validates(self):
        with pytest.raises(ValueError):
            poisson_arrivals(10, 0.0, np.random.default_rng(0))

    def test_zero_and_negative_rates_rejected_everywhere(self):
        rng = np.random.default_rng(0)
        for gen in (poisson_arrivals, burst_arrivals, epidemic_wave_arrivals):
            for rate in (0.0, -2.0):
                with pytest.raises(ValueError):
                    gen(10, rate, rng)
        with pytest.raises(ValueError):
            poisson_arrivals(-1, 1.0, rng)
        with pytest.raises(ValueError):
            burst_arrivals(10, 1.0, rng, burst_factor=0.0)
        with pytest.raises(ValueError):
            burst_arrivals(10, 1.0, rng, burst_fraction=1.5)

    def test_empty_streams(self):
        rng = np.random.default_rng(0)
        for gen in (poisson_arrivals, burst_arrivals, epidemic_wave_arrivals):
            t = gen(0, 4.0, rng)
            assert isinstance(t, np.ndarray) and t.shape == (0,)
        assert make_workload(0, rate_per_s=4.0, seed=0) == []

    def test_all_patterns_monotone_nondecreasing(self):
        for pattern in ("poisson", "burst", "wave"):
            reqs = make_workload(200, rate_per_s=6.0, pattern=pattern, seed=11)
            t = np.array([r.arrival_s for r in reqs])
            assert np.all(np.diff(t) >= 0)
            assert np.all(t >= 0)

    def test_burst_compresses_middle(self):
        t = burst_arrivals(300, 1.0, np.random.default_rng(0), burst_factor=8.0)
        gaps = np.diff(t)
        middle = gaps[120:180].mean()
        edges = np.concatenate([gaps[:80], gaps[-80:]]).mean()
        assert middle < edges / 3

    def test_wave_spans_horizon(self):
        t = epidemic_wave_arrivals(100, 2.0, np.random.default_rng(0))
        assert len(t) == 100
        assert np.all(np.diff(t) >= 0)
        assert t[-1] <= 100 / 2.0 + 1e-9

    def test_make_workload_dup_fraction_drives_cacheable_keys(self):
        reqs = make_workload(100, seed=0, dup_fraction=0.5)
        keys = [r.content_key for r in reqs]
        assert len(set(keys)) < len(keys)
        unique = make_workload(100, seed=0, dup_fraction=0.0)
        assert len({r.content_key for r in unique}) == len(unique)

    def test_content_key_is_content_derived(self):
        assert req(1, 0.0, seed=7).content_key == req(2, 9.0, seed=7).content_key
        assert req(1, 0.0, seed=7).content_key != req(1, 0.0, seed=8).content_key
        assert req(1, 0.0, seed=7).content_key != req(1, 0.0, seed=7, covid=True).content_key

    def test_materialize_matches_descriptor(self):
        r = req(0, 0.0, seed=5, size=16, slices=4)
        vol = r.materialize()
        assert vol.shape == (4, 16, 16)
        assert np.array_equal(vol, r.materialize())  # pure function of seed

    def test_materialize_is_memoized(self):
        # Retries re-materialize; the synthesis must run only once.
        r = req(0, 0.0, seed=5, size=16, slices=4)
        assert r.materialize() is r.materialize()

    def test_slo_and_pattern_validation(self):
        with pytest.raises(ValueError):
            SLO(deadline_s=-1.0)
        with pytest.raises(ValueError):
            make_workload(5, pattern="diurnal")


# ---------------------------------------------------------------------------
class TestAdmissionQueue:
    def test_backpressure_at_capacity(self):
        q = AdmissionQueue(capacity=2)
        assert q.offer(req(0), 0.0) and q.offer(req(1), 0.1)
        assert not q.offer(req(2), 0.2)  # rejected: full
        q.release(req(0), 0.5)
        assert q.offer(req(3), 0.6)
        assert q.stats.rejected == 1 and q.stats.admitted == 3
        q.check_conservation()

    def test_conservation_with_timeouts(self):
        q = AdmissionQueue(capacity=8)
        rs = [req(i, i * 0.1) for i in range(5)]
        for r in rs:
            q.offer(r, r.arrival_s)
        q.time_out(rs[0], 1.0)
        q.release(rs[1], 2.0)
        q.check_conservation()
        assert q.occupancy == 3
        assert q.stats.as_dict() == {"offered": 5, "admitted": 5, "rejected": 0,
                                     "timed_out": 1, "faulted": 0, "departed": 1}

    def test_underflow_raises(self):
        q = AdmissionQueue(capacity=2)
        with pytest.raises(RuntimeError):
            q.release(req(0), 0.0)

    def test_depth_tracking(self):
        q = AdmissionQueue(capacity=10)
        for i in range(4):
            q.offer(req(i, float(i)), float(i))
        assert q.max_depth() == 4
        assert 0 < q.mean_depth() <= 4

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)


# ---------------------------------------------------------------------------
class TestDynamicBatcher:
    def test_size_trigger(self):
        b = DynamicBatcher("enhance", BatchPolicy(max_batch=3, max_wait_s=10.0))
        assert b.add(req(0), 0.0) is None
        assert b.add(req(1), 0.1) is None
        batch = b.add(req(2), 0.2)
        assert batch is not None and len(batch) == 3
        assert b.pending == 0

    def test_wait_trigger(self):
        b = DynamicBatcher("enhance", BatchPolicy(max_batch=8, max_wait_s=0.5))
        b.add(req(0), 1.0)
        assert b.next_deadline() == pytest.approx(1.5)
        assert b.flush_due(1.2) is None  # not due yet
        batch = b.flush_due(1.5)
        assert batch is not None and len(batch) == 1

    def test_overflow_stays_pending(self):
        b = DynamicBatcher("enhance", BatchPolicy(max_batch=2, max_wait_s=1.0))
        b.add(req(0), 0.0)
        batch = b.add(req(1), 0.0)
        assert len(batch) == 2
        b.add(req(2), 0.1)
        assert b.pending == 1
        assert len(b.drain(0.2)) == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_s=-0.1)


# ---------------------------------------------------------------------------
class TestServiceTimeModel:
    def test_enhance_monotone_in_batch(self, service_model):
        times = [service_model.batch_time(NVIDIA_V100, "enhance", b)
                 for b in (1, 2, 4, 8)]
        assert all(t1 > t0 for t0, t1 in zip(times, times[1:]))

    def test_fleet_heterogeneity_visible(self, service_model):
        v100 = service_model.batch_time(NVIDIA_V100, "enhance", 1)
        xeon = service_model.batch_time(DEVICES["Intel Xeon Gold 6128 CPU"], "enhance", 1)
        fpga = service_model.batch_time(DEVICES["Intel Arria 10 GX 1150 FPGA"], "enhance", 1)
        assert v100 < xeon < fpga

    def test_stage_cost_ordering(self, service_model):
        enhance = service_model.batch_time(NVIDIA_V100, "enhance", 4)
        segment = service_model.batch_time(NVIDIA_V100, "segment", 4)
        classify = service_model.batch_time(NVIDIA_V100, "classify", 4)
        assert segment < classify < enhance

    def test_validation(self, service_model):
        with pytest.raises(ValueError):
            service_model.batch_time(NVIDIA_V100, "triage", 1)
        with pytest.raises(ValueError):
            service_model.batch_time(NVIDIA_V100, "enhance", 0)


class TestFleetScheduler:
    def _batch(self, n=2, stage="enhance"):
        return Batch(0, stage, [req(i) for i in range(n)], 0.0)

    def test_fleet_from_spec(self):
        assert len(fleet_from_spec("all")) == 6
        assert [d.name for d in fleet_from_spec("V100,Xeon")] == [
            "Nvidia V100 GPU", "Intel Xeon Gold 6128 CPU"]
        with pytest.raises(KeyError):
            fleet_from_spec("Nvidia")  # ambiguous

    def test_round_robin_cycles(self, service_model):
        s = FleetScheduler(fleet_from_spec("gpus"), "round-robin", service_model)
        picked = [s.pick(self._batch(), 0.0).spec.name for _ in range(4)]
        assert len(set(picked)) == 4  # visits every device before repeating

    def test_least_loaded_prefers_idle(self, service_model):
        s = FleetScheduler(fleet_from_spec("gpus"), "least-loaded", service_model)
        first = s.pick(self._batch(), 0.0)
        s.dispatch(first, self._batch(), 0.0)
        second = s.pick(self._batch(), 0.0)
        assert second.spec.name != first.spec.name

    def test_perf_aware_prefers_fastest(self, service_model):
        s = FleetScheduler(fleet_from_spec("mixed"), "perf-aware", service_model)
        assert s.pick(self._batch(), 0.0).spec.name == "Nvidia V100 GPU"

    def test_perf_aware_declines_when_best_is_busy(self, service_model):
        s = FleetScheduler([NVIDIA_V100, DEVICES["Intel Arria 10 GX 1150 FPGA"]],
                           "perf-aware", service_model)
        w = s.pick(self._batch(), 0.0)
        s.dispatch(w, self._batch(), 0.0)
        # V100 busy for ~0.4 s; the idle FPGA would take ~17 s — wait.
        assert s.pick(self._batch(), 0.0) is None

    def test_slot_enforcement(self, service_model):
        s = FleetScheduler([NVIDIA_V100], "round-robin", service_model)
        w = s.pick(self._batch(), 0.0)
        s.dispatch(w, self._batch(), 0.0)
        assert s.pick(self._batch(), 0.0) is None
        with pytest.raises(RuntimeError):
            w.begin(0.0, 1.0)

    def test_completion_accounting(self, service_model):
        s = FleetScheduler([NVIDIA_T4], "round-robin", service_model, slots=2)
        b = self._batch(3)
        w = s.pick(b, 0.0)
        done = s.dispatch(w, b, 0.0)
        assert done > 0 and w.in_flight == 1
        w.complete(b)
        assert w.in_flight == 0 and w.requests_done == 3 and w.batches_done == 1
        with pytest.raises(RuntimeError):
            w.complete(b)

    def test_pick_with_every_device_excluded(self, service_model):
        fleet = fleet_from_spec("gpus")
        everyone = {d.name for d in fleet}
        for policy in ("round-robin", "least-loaded", "perf-aware"):
            s = FleetScheduler(fleet, policy, service_model)
            assert s.pick(self._batch(), 0.0, exclude=everyone) is None
        # Partial exclusion still yields a non-excluded worker.
        s = FleetScheduler(fleet, "perf-aware", service_model)
        w = s.pick(self._batch(), 0.0, exclude={"Nvidia V100 GPU"})
        assert w is not None and w.spec.name != "Nvidia V100 GPU"

    def test_failure_accounting(self, service_model):
        s = FleetScheduler([NVIDIA_V100], "round-robin", service_model)
        b = self._batch()
        w = s.pick(b, 0.0)
        s.dispatch(w, b, 0.0)
        w.fail(b)
        assert w.in_flight == 0 and w.batches_failed == 1
        assert w.batches_done == 0 and w.requests_done == 0
        with pytest.raises(RuntimeError):
            w.fail(b)

    def test_policy_validation(self, service_model):
        with pytest.raises(ValueError):
            FleetScheduler([NVIDIA_V100], "random", service_model)
        with pytest.raises(ValueError):
            FleetScheduler([], "round-robin", service_model)


# ---------------------------------------------------------------------------
class TestResultCache:
    def test_hit_miss_stats(self):
        c = ResultCache(capacity=4)
        assert c.get("a") is None
        c.put("a", 1)
        assert c.get("a") == 1
        assert c.hits == 1 and c.misses == 1 and c.hit_rate == 0.5

    def test_lru_eviction(self):
        c = ResultCache(capacity=2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")          # refresh a; b is now LRU
        c.put("c", 3)
        assert "a" in c and "c" in c and "b" not in c
        assert c.evictions == 1

    def test_zero_capacity_never_stores(self):
        c = ResultCache(capacity=0)
        c.put("a", 1)
        assert c.get("a") is None


# ---------------------------------------------------------------------------
class TestEngineInvariants:
    @pytest.fixture(scope="class")
    def workload(self):
        return make_workload(48, rate_per_s=12.0, seed=3, dup_fraction=0.3)

    @pytest.fixture(scope="class")
    def report(self, workload):
        return ServingEngine(fleet="mixed", policy="perf-aware").run(workload)

    def test_conservation(self, report, workload):
        assert len(report.completed) + len(report.shed) == len(workload)
        s = report.queue_stats
        assert s["admitted"] == s["departed"] + s["timed_out"]
        cache_hits = sum(1 for r in report.completed if r.from_cache)
        assert s["offered"] == len(workload) - cache_hits

    def test_trace_timestamps_monotone(self, report):
        ts = [e.t for e in report.trace]
        assert all(t1 >= t0 for t0, t1 in zip(ts, ts[1:]))

    def test_no_device_exceeds_slots(self, report):
        in_flight = {}
        for e in report.trace:
            if e.kind == "dispatch":
                d = e.detail["device"]
                in_flight[d] = in_flight.get(d, 0) + 1
                assert in_flight[d] <= 1, d
            elif e.kind == "complete":
                in_flight[e.detail["device"]] -= 1
        assert all(v == 0 for v in in_flight.values())
        assert all(w.max_in_flight <= w.slots for w in report.workers)

    def test_latencies_positive_and_ordered(self, report):
        for r in report.completed:
            assert r.latency_s > 0
            assert r.completed_s >= r.request.arrival_s

    def test_cache_hits_are_duplicates_with_fixed_latency(self, report):
        first_seen = set()
        for r in sorted(report.completed, key=lambda r: r.completed_s):
            if r.from_cache:
                assert r.request.content_key in first_seen
                assert r.latency_s == pytest.approx(CACHE_HIT_LATENCY_S)
            else:
                first_seen.add(r.request.content_key)
        assert report.cache_stats["hits"] > 0  # dup_fraction drove real hits

    def test_deterministic_replay(self, workload):
        s1 = ServingEngine(fleet="mixed", policy="perf-aware").run(workload).summary()
        s2 = ServingEngine(fleet="mixed", policy="perf-aware").run(workload).summary()
        assert s1 == s2

    def test_summary_shape(self, report):
        s = report.summary()
        for key in ("throughput_rps", "latency_p50_s", "latency_p95_s",
                    "latency_p99_s", "device_utilization", "cache_hit_rate"):
            assert key in s
        assert set(s["device_utilization"]) == {w.spec.name for w in report.workers}

    def test_backpressure_sheds_under_tiny_queue(self):
        reqs = make_workload(30, rate_per_s=200.0, seed=0, dup_fraction=0.0)
        rep = ServingEngine(fleet="Arria", policy="round-robin",
                            queue_capacity=4).run(reqs)
        assert rep.queue_stats["rejected"] > 0
        assert all(r.shed_reason is ShedReason.QUEUE_FULL for r in rep.shed
                   if r.latency_s is None)

    def test_timeout_shedding_on_slow_fleet(self):
        slo = SLO(deadline_s=1.0, queue_timeout_s=10.0)
        reqs = make_workload(24, rate_per_s=50.0, seed=0, dup_fraction=0.0, slo=slo)
        rep = ServingEngine(fleet="Arria", policy="round-robin",
                            queue_capacity=64).run(reqs)
        assert rep.queue_stats["timed_out"] > 0
        rep.summary()  # conservation holds with sheds in the mix

    def test_perf_aware_beats_round_robin_on_mixed_fleet(self, workload):
        fast = ServingEngine(fleet="mixed", policy="perf-aware").run(workload)
        slow = ServingEngine(fleet="mixed", policy="round-robin").run(workload)
        assert fast.summary()["throughput_rps"] >= slow.summary()["throughput_rps"]


# ---------------------------------------------------------------------------
class TestEngineFunctional:
    @pytest.fixture(scope="class")
    def tiny_framework(self):
        from repro.models import DDnet, DenseNet3D
        from repro.pipeline import ClassificationAI, ComputeCovid19Plus, EnhancementAI

        return ComputeCovid19Plus(
            enhancement=EnhancementAI(
                model=DDnet(base_channels=4, growth=4, num_blocks=2,
                            layers_per_block=2, dense_kernel=3, deconv_kernel=3,
                            rng=np.random.default_rng(0)),
                msssim_levels=1, msssim_window=5),
            classification=ClassificationAI(
                model=DenseNet3D(block_layers=(1, 1, 1, 1), growth=4,
                                 init_features=4, rng=np.random.default_rng(0))),
        )

    def test_served_results_are_genuine_and_cache_safe(self, tiny_framework):
        reqs = make_workload(10, rate_per_s=6.0, seed=2, dup_fraction=0.5,
                             size=16, slices=16)
        engine = ServingEngine(fleet="gpus", policy="perf-aware",
                               verify_batches=10**6, framework=tiny_framework)
        rep = engine.run(reqs)
        assert rep.verified_batches > 0
        by_key = {}
        for r in sorted(rep.completed, key=lambda r: r.completed_s):
            assert r.result is not None
            if not r.from_cache:
                by_key[r.request.content_key] = r.result
        # Cache hits never change results: a duplicate's cached result is
        # the one computed from the byte-identical scan.
        for r in rep.completed:
            if r.from_cache:
                assert r.result.probability == by_key[r.request.content_key].probability
        # Served results match running the pipeline directly.
        sample = next(r for r in rep.completed if not r.from_cache)
        direct = tiny_framework.diagnose(sample.request.materialize())
        assert sample.result.probability == pytest.approx(direct.probability, abs=1e-9)

    def test_verify_budget_limits_functional_batches(self, tiny_framework):
        reqs = make_workload(12, rate_per_s=6.0, seed=4, dup_fraction=0.0,
                             size=16, slices=16)
        engine = ServingEngine(fleet="gpus", policy="perf-aware",
                               verify_batches=1, framework=tiny_framework)
        rep = engine.run(reqs)
        assert rep.verified_batches == 1
        with_results = [r for r in rep.completed if r.result is not None]
        assert 0 < len(with_results) < len(rep.completed)


# ---------------------------------------------------------------------------
class TestMetrics:
    def test_percentile_nearest_rank(self):
        vals = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(vals, 50) == 3.0
        assert percentile(vals, 95) == 5.0
        assert percentile(vals, 0) == 1.0
        assert np.isnan(percentile([], 50))
        with pytest.raises(ValueError):
            percentile(vals, 101)
