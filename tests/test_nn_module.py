"""Tests for the Module/Parameter system and layer mechanics."""

import numpy as np
import pytest

import repro.nn as nn
from repro.tensor import Tensor


class TestModuleSystem:
    def test_parameter_registration(self):
        layer = nn.Linear(3, 2)
        names = [n for n, _ in layer.named_parameters()]
        assert set(names) == {"weight", "bias"}

    def test_child_module_discovery(self):
        net = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        params = net.parameters()
        assert len(params) == 4  # two weights + two biases

    def test_num_parameters(self):
        net = nn.Linear(3, 2)
        assert net.num_parameters() == 3 * 2 + 2

    def test_train_eval_propagates(self):
        net = nn.Sequential(nn.BatchNorm2d(3), nn.Sequential(nn.BatchNorm2d(3)))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        net = nn.Linear(2, 1)
        out = net(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert net.weight.grad is not None
        net.zero_grad()
        assert net.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = nn.Sequential(nn.Conv2d(1, 2, 3, rng=np.random.default_rng(1)), nn.BatchNorm2d(2))
        b = nn.Sequential(nn.Conv2d(1, 2, 3, rng=np.random.default_rng(2)), nn.BatchNorm2d(2))
        b.load_state_dict(a.state_dict())
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            assert np.array_equal(pa.data, pb.data)

    def test_state_dict_includes_buffers(self):
        bn = nn.BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_load_state_dict_strict_mismatch(self):
        with pytest.raises(KeyError):
            nn.Linear(2, 2).load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_state_dict_shape_mismatch(self):
        net = nn.Linear(2, 2)
        bad = net.state_dict()
        bad["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            net.load_state_dict(bad)

    def test_save_load_npz(self, tmp_path):
        a = nn.Conv2d(1, 2, 3, rng=np.random.default_rng(1))
        b = nn.Conv2d(1, 2, 3, rng=np.random.default_rng(9))
        path = str(tmp_path / "model.npz")
        a.save(path)
        b.load(path)
        assert np.array_equal(a.weight.data, b.weight.data)

    def test_float32_state_dict_roundtrip_no_dtype_drift(self, tmp_path):
        """A float32-cast model survives save/load with no dtype drift.

        ``to_dtype`` casts parameters *and* float buffers (batch-norm
        running stats); the checkpoint round-trip must preserve both —
        a silent re-promotion to float64 would quietly disable the
        float32 inference fast path.
        """
        a = nn.Sequential(nn.Conv2d(1, 2, 3, rng=np.random.default_rng(1)),
                          nn.BatchNorm2d(2))
        # Exercise the running buffers so they hold non-initial values.
        a(Tensor(np.random.default_rng(2).normal(size=(2, 1, 6, 6))))
        a.to_dtype(np.float32)
        state = a.state_dict()
        assert state  # params and buffers present
        assert all(v.dtype == np.float32 for v in state.values()
                   if v.dtype.kind == "f")

        path = str(tmp_path / "model32.npz")
        a.save(path)
        b = nn.Sequential(nn.Conv2d(1, 2, 3, rng=np.random.default_rng(9)),
                          nn.BatchNorm2d(2))
        assert b.dtype == np.float64  # fresh model starts float64
        b.load(path)
        assert b.dtype == np.float32
        for (name, arr) in b.state_dict().items():
            if arr.dtype.kind == "f":
                assert arr.dtype == np.float32, name
            assert np.array_equal(arr, state[name]), name
        # The live buffer attributes track the re-bound arrays too.
        bn = b[1]
        assert bn.running_mean.dtype == np.float32
        assert bn.running_var.dtype == np.float32

    def test_module_list(self):
        ml = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(ml) == 2
        assert len(list(ml)) == 2
        # parameters of children are discovered through the list
        parent = nn.Sequential()
        parent.ml = ml
        assert len(parent.parameters()) == 4


class TestLayerBehaviour:
    def test_linear_matches_matmul(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x))
        ref = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(out.data, ref)

    def test_conv2d_gaussian_init_std(self):
        layer = nn.Conv2d(4, 8, 5, init_std=0.01, rng=np.random.default_rng(0))
        assert abs(layer.weight.data.std() - 0.01) < 0.002

    def test_conv2d_kaiming_when_no_std(self):
        layer = nn.Conv2d(16, 16, 3, init_std=None, rng=np.random.default_rng(0))
        # Kaiming std = sqrt(2/fan_in) with leaky slope 0
        expect = np.sqrt(2.0 / (16 * 9))
        assert abs(layer.weight.data.std() - expect) / expect < 0.15

    def test_batchnorm_running_stats_in_eval(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.normal(loc=4.0, size=(8, 2, 4, 4)))
        bn.train()
        bn(x)
        assert not np.allclose(bn.running_mean, 0.0)
        bn.eval()
        frozen = bn.running_mean.copy()
        bn(Tensor(rng.normal(size=(8, 2, 4, 4))))
        assert np.array_equal(bn.running_mean, frozen)

    def test_dropout_train_vs_eval(self, rng):
        drop = nn.Dropout(0.5, rng=rng)
        x = Tensor(np.ones((100, 10)))
        out_train = drop(x)
        assert (out_train.data == 0).any()
        # Inverted scaling keeps the expectation.
        assert abs(out_train.data.mean() - 1.0) < 0.2
        drop.eval()
        assert np.array_equal(drop(x).data, x.data)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)

    def test_sequential_indexing(self):
        net = nn.Sequential(nn.ReLU(), nn.Sigmoid())
        assert isinstance(net[0], nn.ReLU)
        assert len(net) == 2

    def test_conv3d_forward_shape(self, rng):
        layer = nn.Conv3d(2, 4, 3, padding=1, rng=rng)
        out = layer(Tensor(rng.normal(size=(1, 2, 4, 4, 4))))
        assert out.shape == (1, 4, 4, 4, 4)

    def test_upsample_module(self, rng):
        up = nn.UpsampleBilinear2d(2)
        assert up(Tensor(rng.normal(size=(1, 1, 4, 4)))).shape == (1, 1, 8, 8)

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(3,)))
        assert np.array_equal(nn.Identity()(x).data, x.data)
