"""Tests for optimizers, LR schedules, data loading, and augmentation."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.augment import Compose, GaussianNoise, IntensityScale, RandomContrast, classification_augmentation
from repro.nn.data import DataLoader, DistributedSampler, TensorDataset
from repro.nn.module import Parameter


def quadratic_param():
    """A parameter optimized toward zero of f(x) = x²."""
    return Parameter(np.array([5.0, -3.0]))


class TestOptimizers:
    def _minimize(self, opt_cls, steps=200, **kw):
        p = quadratic_param()
        opt = opt_cls([p], **kw)
        for _ in range(steps):
            opt.zero_grad()
            p.grad = 2.0 * p.data  # d/dx x²
            opt.step()
        return p.data

    def test_sgd_converges(self):
        assert np.abs(self._minimize(nn.SGD, lr=0.1)).max() < 1e-6

    def test_sgd_momentum_converges(self):
        assert np.abs(self._minimize(nn.SGD, lr=0.05, momentum=0.9)).max() < 1e-4

    def test_adam_converges(self):
        assert np.abs(self._minimize(nn.Adam, lr=0.3)).max() < 1e-3

    def test_adam_bias_correction_first_step(self):
        # First Adam step should be ≈ lr in the gradient direction.
        p = Parameter(np.array([1.0]))
        opt = nn.Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        assert np.isclose(p.data[0], 1.0 - 0.1, atol=1e-6)

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_skips_none_grads(self):
        p = quadratic_param()
        before = p.data.copy()
        nn.Adam([p], lr=0.1).step()
        assert np.array_equal(p.data, before)

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_negative_lr_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([quadratic_param()], lr=-1.0)


class TestSchedulers:
    def test_exponential_decay_factor(self):
        """Paper §3.1.1: lr reduced by ×0.8 each epoch."""
        opt = nn.Adam([quadratic_param()], lr=1e-4)
        sched = nn.ExponentialLR(opt, gamma=0.8)
        for epoch in range(1, 4):
            sched.step()
            assert np.isclose(opt.lr, 1e-4 * 0.8**epoch)

    def test_step_lr(self):
        opt = nn.SGD([quadratic_param()], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_invalid_gamma(self):
        opt = nn.SGD([quadratic_param()], lr=1.0)
        with pytest.raises(ValueError):
            nn.ExponentialLR(opt, gamma=1.5)


class TestData:
    def test_tensor_dataset(self, rng):
        x, y = rng.normal(size=(10, 3)), rng.normal(size=10)
        ds = TensorDataset(x, y)
        assert len(ds) == 10
        xi, yi = ds[4]
        assert np.array_equal(xi, x[4]) and yi == y[4]

    def test_tensor_dataset_misaligned(self, rng):
        with pytest.raises(ValueError):
            TensorDataset(rng.normal(size=(4, 2)), rng.normal(size=5))

    def test_loader_batches(self, rng):
        ds = TensorDataset(rng.normal(size=(10, 2)), rng.normal(size=10))
        loader = DataLoader(ds, batch_size=3)
        batches = list(loader)
        assert len(batches) == 4
        assert batches[0][0].shape == (3, 2)
        assert batches[-1][0].shape == (1, 2)
        assert len(loader) == 4

    def test_loader_drop_last(self, rng):
        ds = TensorDataset(rng.normal(size=(10, 2)))
        loader = DataLoader(ds, batch_size=3, drop_last=True)
        assert len(list(loader)) == 3 == len(loader)

    def test_loader_shuffle_deterministic_per_seed(self, rng):
        ds = TensorDataset(np.arange(20).reshape(20, 1))
        a = np.concatenate([b[0].ravel() for b in DataLoader(ds, 5, shuffle=True, seed=1)])
        b = np.concatenate([b[0].ravel() for b in DataLoader(ds, 5, shuffle=True, seed=1)])
        assert np.array_equal(a, b)
        assert not np.array_equal(a, np.arange(20))

    def test_shuffle_and_sampler_conflict(self, rng):
        ds = TensorDataset(np.arange(4).reshape(4, 1))
        sampler = DistributedSampler(ds, 2, 0)
        with pytest.raises(ValueError):
            DataLoader(ds, shuffle=True, sampler=sampler)


class TestDistributedSampler:
    def test_partition_covers_dataset(self):
        ds = TensorDataset(np.arange(10).reshape(10, 1))
        all_idx = []
        for rank in range(3):
            s = DistributedSampler(ds, 3, rank, shuffle=False)
            all_idx.extend(list(iter(s)))
        # Padded to 12, wrapping the first two indices.
        assert len(all_idx) == 12
        assert set(all_idx) == set(range(10))

    def test_ranks_disjoint_before_padding(self):
        ds = TensorDataset(np.arange(12).reshape(12, 1))
        parts = [set(iter(DistributedSampler(ds, 3, r, shuffle=False))) for r in range(3)]
        assert parts[0] & parts[1] == set()
        assert parts[0] & parts[2] == set()

    def test_set_epoch_changes_order(self):
        ds = TensorDataset(np.arange(16).reshape(16, 1))
        s = DistributedSampler(ds, 2, 0, shuffle=True, seed=3)
        a = list(iter(s))
        s.set_epoch(1)
        b = list(iter(s))
        assert a != b

    def test_invalid_rank(self):
        ds = TensorDataset(np.arange(4).reshape(4, 1))
        with pytest.raises(ValueError):
            DistributedSampler(ds, 2, 5)


class TestAugmentation:
    def test_gaussian_noise_probability(self, rng):
        aug = GaussianNoise(prob=1.0, variance=0.1, rng=rng)
        x = np.zeros((8, 8))
        out = aug(x)
        assert abs(out.std() - np.sqrt(0.1)) < 0.1
        never = GaussianNoise(prob=0.0, rng=rng)
        assert np.array_equal(never(x), x)

    def test_contrast_preserves_mean(self, rng):
        aug = RandomContrast(prob=1.0, rng=rng)
        x = rng.normal(loc=3.0, size=(16, 16))
        out = aug(x)
        assert np.isclose(out.mean(), x.mean(), atol=1e-9)

    def test_intensity_scale_bounds(self, rng):
        aug = IntensityScale(magnitude=0.1, rng=rng)
        x = np.ones((4, 4))
        out = aug(x)
        assert 0.9 <= out.mean() <= 1.1

    def test_compose_order(self, rng):
        calls = []
        c = Compose([lambda x: calls.append("a") or x, lambda x: calls.append("b") or x])
        c(np.zeros(2))
        assert calls == ["a", "b"]

    def test_paper_stack_constructs(self, rng):
        aug = classification_augmentation(rng)
        out = aug(np.zeros((4, 8, 8)))
        assert out.shape == (4, 8, 8)
