"""Tests for the process group, DDP wrapper, and Table 3 time model."""

import numpy as np
import pytest

import repro.nn as nn
from repro.distributed import (
    ClusterSpec,
    DistributedDataParallel,
    GlooCostModel,
    ProcessGroup,
    TrainingTimeModel,
    paper_table3_rows,
)
from repro.tensor import Tensor


class TestProcessGroup:
    def test_allreduce_mean(self):
        pg = ProcessGroup(3)
        bufs = [np.array([1.0]), np.array([2.0]), np.array([6.0])]
        out = pg.all_reduce(bufs, op="mean")
        assert all(np.isclose(o[0], 3.0) for o in out)

    def test_allreduce_sum_max(self):
        pg = ProcessGroup(2)
        bufs = [np.array([1.0, 5.0]), np.array([2.0, 3.0])]
        assert np.allclose(pg.all_reduce(bufs, op="sum")[0], [3.0, 8.0])
        assert np.allclose(pg.all_reduce(bufs, op="max")[1], [2.0, 5.0])

    def test_wrong_buffer_count(self):
        with pytest.raises(ValueError):
            ProcessGroup(2).all_reduce([np.zeros(2)])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ProcessGroup(2).all_reduce([np.zeros(2), np.zeros(3)])

    def test_broadcast(self):
        pg = ProcessGroup(4)
        out = pg.broadcast(np.arange(3), root=2)
        assert len(out) == 4
        assert all(np.array_equal(o, np.arange(3)) for o in out)

    def test_broadcast_invalid_root(self):
        with pytest.raises(ValueError):
            ProcessGroup(2).broadcast(np.zeros(2), root=5)

    def test_all_gather(self):
        pg = ProcessGroup(2)
        out = pg.all_gather([np.array([1.0]), np.array([2.0])])
        assert np.isclose(out[0][1][0], 2.0)
        assert np.isclose(out[1][0][0], 1.0)

    def test_stats_accumulate(self):
        pg = ProcessGroup(2)
        pg.all_reduce([np.zeros(10), np.zeros(10)])
        pg.barrier()
        assert pg.stats.collectives == 2
        assert pg.stats.bytes_moved == 80
        assert pg.stats.simulated_time_s > 0

    def test_world_size_one_free_comm(self):
        pg = ProcessGroup(1)
        pg.all_reduce([np.zeros(100)])
        assert pg.stats.simulated_time_s == 0.0

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            ProcessGroup(0)


class TestGlooCostModel:
    def test_ring_allreduce_scaling(self):
        m = GlooCostModel(bandwidth_bytes_per_s=1e9, latency_s=0.0)
        t2 = m.allreduce_time(1_000_000, 2)
        t8 = m.allreduce_time(1_000_000, 8)
        # 2(p-1)/p grows from 1.0 toward 2.0.
        assert np.isclose(t8 / t2, (2 * 7 / 8) / (2 * 1 / 2))

    def test_latency_dominates_small_messages(self):
        m = GlooCostModel(bandwidth_bytes_per_s=1e12, latency_s=1e-3)
        assert m.allreduce_time(8, 4) >= 6e-3

    def test_single_rank_free(self):
        assert GlooCostModel().allreduce_time(1e9, 1) == 0.0
        assert GlooCostModel().allgather_time(1e9, 1) == 0.0

    def test_allgather_linear_in_world_size(self):
        m = GlooCostModel(bandwidth_bytes_per_s=1e9, latency_s=1e-4)
        t4 = m.allgather_time(1_000, 4)
        t8 = m.allgather_time(1_000, 8)
        # (p-1)(bytes/bw + latency): no reduce-scatter ring to pipeline.
        assert np.isclose(t4, 3 * (1_000 / 1e9 + 1e-4))
        assert np.isclose(t8 / t4, 7 / 3)

    def test_sparse_allgather_beats_dense_allreduce_when_small(self):
        m = GlooCostModel()
        dense = m.allreduce_time(2_900_000, 8)
        sparse = m.allgather_time(29_000 * 12 // 8, 8)  # ~1.5% kept
        assert sparse < dense

    def test_iter_compute_time_floor_and_slope(self):
        tm = TrainingTimeModel()
        assert tm.iter_compute_time(1) == tm.t_min_s
        assert tm.iter_compute_time(8) == pytest.approx(
            tm.t_launch_s + 8 * tm.t_image_s)
        with pytest.raises(ValueError):
            tm.iter_compute_time(0)


def _model_factory(seed):
    def factory():
        rng = np.random.default_rng(seed)
        return nn.Sequential(
            nn.Conv2d(1, 2, 3, padding=1, init_std=None, rng=rng),
            nn.LeakyReLU(),
            nn.Conv2d(2, 1, 3, padding=1, init_std=None, rng=rng),
        )
    return factory


class TestDDP:
    def test_initial_broadcast_syncs_different_seeds(self):
        pg = ProcessGroup(2)
        seeds = iter([1, 2])

        def factory():
            return _model_factory(next(seeds))()

        ddp = DistributedDataParallel(factory, pg, lambda p: nn.SGD(p, lr=0.1))
        assert ddp.replicas_in_sync()

    def test_replicas_stay_in_sync_through_training(self, rng):
        pg = ProcessGroup(2)
        ddp = DistributedDataParallel(_model_factory(0), pg, lambda p: nn.Adam(p, lr=1e-3))
        x = rng.normal(size=(4, 1, 8, 8))
        y = 0.5 * x
        for _ in range(3):
            ddp.train_step([(x[:2], y[:2]), (x[2:], y[2:])], nn.MSELoss())
        assert ddp.replicas_in_sync()

    def test_equivalence_with_large_batch_single_process(self, rng):
        """DDP over shards ≡ one big batch: the key DDP invariant."""
        x = rng.normal(size=(4, 1, 8, 8))
        y = 0.3 * x
        loss_fn = nn.MSELoss()
        # Single-process reference.
        ref = _model_factory(0)()
        opt = nn.SGD(ref.parameters(), lr=0.1)
        for _ in range(3):
            opt.zero_grad()
            loss_fn(ref(Tensor(x)), Tensor(y)).backward()
            opt.step()
        # Two-rank DDP on half batches.
        pg = ProcessGroup(2)
        ddp = DistributedDataParallel(_model_factory(0), pg, lambda p: nn.SGD(p, lr=0.1))
        for _ in range(3):
            ddp.train_step([(x[:2], y[:2]), (x[2:], y[2:])], loss_fn)
        for pr, pd in zip(ref.parameters(), ddp.module.parameters()):
            # MSE over half batches averages to the full-batch gradient.
            assert np.allclose(pr.data, pd.data, atol=1e-10)

    def test_loss_decreases(self, rng):
        pg = ProcessGroup(2)
        ddp = DistributedDataParallel(_model_factory(0), pg, lambda p: nn.Adam(p, lr=3e-3))
        x = rng.normal(size=(4, 1, 8, 8))
        y = 0.5 * x
        losses = [ddp.train_step([(x[:2], y[:2]), (x[2:], y[2:])], nn.MSELoss())
                  for _ in range(15)]
        assert losses[-1] < losses[0] * 0.7

    def test_shard_count_mismatch(self, rng):
        pg = ProcessGroup(2)
        ddp = DistributedDataParallel(_model_factory(0), pg, lambda p: nn.SGD(p, lr=0.1))
        with pytest.raises(ValueError):
            ddp.train_step([(np.zeros((1, 1, 8, 8)), np.zeros((1, 1, 8, 8)))], nn.MSELoss())


class TestTrainingTimeModel:
    def test_single_node_matches_paper(self):
        """Row 1 of Table 3: 1 node, batch 1, 50 epochs ≈ 15h14m."""
        est = TrainingTimeModel().estimate(ClusterSpec(1), 1, 50)
        paper = 15 * 3600 + 14 * 60 + 46
        assert abs(est.total_time_s - paper) / paper < 0.05

    def test_all_table3_rows_within_tolerance(self):
        for row in paper_table3_rows():
            assert abs(row["rel_error"]) < 0.15, row

    def test_speedup_sublinear(self):
        """§5.1.2: speedup improves with nodes but stays sub-linear."""
        m = TrainingTimeModel()
        t1 = m.estimate(ClusterSpec(1), 1, 50)
        t4 = m.estimate(ClusterSpec(4), 8, 50)
        t8 = m.estimate(ClusterSpec(8), 32, 50)
        s4 = t1.total_time_s / t4.total_time_s
        s8 = t1.total_time_s / t8.total_time_s
        assert 1.0 < s4
        assert s4 < 8 * 4     # generous sublinearity bound vs perfect batch scaling
        assert s8 > s4        # more nodes + batch still helps

    def test_larger_batch_faster(self):
        m = TrainingTimeModel()
        t8 = m.estimate(ClusterSpec(8), 8, 50)
        t64 = m.estimate(ClusterSpec(8), 64, 50)
        assert t64.total_time_s < t8.total_time_s

    def test_epochs_scale_linearly(self):
        m = TrainingTimeModel()
        a = m.estimate(ClusterSpec(4), 8, 50)
        b = m.estimate(ClusterSpec(4), 8, 100)
        assert np.isclose(b.total_time_s, 2 * a.total_time_s)

    def test_sync_overhead_visible_at_batch_parity(self):
        """8 nodes × local batch 1 is slower per epoch than 1 node × batch 1
        would be per the same iteration count — sync costs something."""
        m = TrainingTimeModel()
        iter1 = m.iter_time(1, ClusterSpec(1))
        iter8 = m.iter_time(1, ClusterSpec(8))
        assert iter8 > iter1

    def test_batch_divisibility(self):
        with pytest.raises(ValueError):
            TrainingTimeModel().estimate(ClusterSpec(4), 6, 50)

    def test_hhmmss_format(self):
        est = TrainingTimeModel().estimate(ClusterSpec(1), 1, 50)
        parts = est.hhmmss.split(":")
        assert len(parts) == 3

    def test_invalid_cluster(self):
        with pytest.raises(ValueError):
            ClusterSpec(0)
