"""Tests for the OpenCL-style runtime model (buffers, queue, events)."""

import numpy as np
import pytest

from repro.hetero import INTEL_XEON_6128, NVIDIA_V100, InferenceEngine
from repro.hetero.oclsim import CommandQueue, DeviceMemoryError, transfer_fraction
from repro.models import DDnet


class TestBuffers:
    def test_allocation_accounting(self):
        q = CommandQueue(NVIDIA_V100)
        a = q.alloc("a", 1_000_000)
        q.alloc("b", 2_000_000)
        assert q.allocated == 3_000_000
        a.release()
        assert q.allocated == 2_000_000
        assert q.peak_allocated == 3_000_000

    def test_release_idempotent(self):
        q = CommandQueue(NVIDIA_V100)
        a = q.alloc("a", 100)
        a.release()
        a.release()
        assert q.allocated == 0

    def test_capacity_enforced(self):
        q = CommandQueue(NVIDIA_V100, memory_bytes=1000)
        q.alloc("a", 800)
        with pytest.raises(DeviceMemoryError):
            q.alloc("b", 300)

    def test_negative_allocation(self):
        with pytest.raises(ValueError):
            CommandQueue(NVIDIA_V100).alloc("x", -1)


class TestQueue:
    def test_in_order_timestamps(self):
        q = CommandQueue(NVIDIA_V100)
        e1 = q.enqueue_kernel("k1", 0.010)
        e2 = q.enqueue_kernel("k2", 0.020)
        assert e1.end_s <= e2.start_s
        assert e2.queued_s == e1.end_s
        assert q.finish() == pytest.approx(e2.end_s)

    def test_event_durations_include_launch(self):
        q = CommandQueue(NVIDIA_V100)
        ev = q.enqueue_kernel("k", 0.001)
        assert ev.duration_s == pytest.approx(0.001 + NVIDIA_V100.launch_overhead_us * 1e-6)

    def test_transfer_time_matches_bandwidth(self):
        q = CommandQueue(NVIDIA_V100)
        buf = q.alloc("x", 120_000_000)
        ev = q.enqueue_write(buf)
        assert ev.duration_s == pytest.approx(120_000_000 / 12.0e9)
        assert ev.kind == "transfer"

    def test_profile_aggregates_by_kind(self):
        q = CommandQueue(NVIDIA_V100)
        buf = q.alloc("x", 1_000_000)
        q.enqueue_write(buf)
        q.enqueue_kernel("conv:a", 0.005)
        q.enqueue_kernel("conv:b", 0.005)
        prof = q.profile()
        assert prof["kernel"] == pytest.approx(0.010 + 2e-5)
        assert prof["transfer"] > 0.0
        assert prof["total"] == pytest.approx(q.finish())

    def test_kernel_time_by_prefix(self):
        q = CommandQueue(NVIDIA_V100)
        q.enqueue_kernel("convolution:stem", 0.004)
        q.enqueue_kernel("deconvolution:head", 0.006)
        q.enqueue_kernel("convolution:db1", 0.001)
        by = q.kernel_time_by_prefix()
        assert by["convolution"] > by["deconvolution"] - 0.002
        assert set(by) == {"convolution", "deconvolution"}

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            CommandQueue(NVIDIA_V100).enqueue_kernel("k", -1.0)


class TestEngineQueueIntegration:
    @pytest.fixture(scope="class")
    def net(self):
        return DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                     dense_kernel=3, deconv_kernel=3,
                     rng=np.random.default_rng(0)).eval()

    def test_queue_run_matches_plain_run(self, net, rng):
        x = rng.random((1, 1, 16, 16))
        eng = InferenceEngine(net, INTEL_XEON_6128)
        plain, _ = eng.run(x)
        queued, trace, queue = eng.run_with_queue(x)
        assert np.allclose(plain, queued)
        # One event per kernel launch plus the two transfers.
        kernel_events = [e for e in queue.events if e.kind == "kernel"]
        assert len(kernel_events) == len(trace.launches)

    def test_queue_total_close_to_trace_time(self, net, rng):
        x = rng.random((1, 1, 16, 16))
        eng = InferenceEngine(net, INTEL_XEON_6128)
        _, trace, queue = eng.run_with_queue(x)
        prof = queue.profile()
        assert prof["kernel"] == pytest.approx(trace.modelled_time_s, rel=1e-9)

    def test_transfers_negligible_vs_kernels(self, net, rng):
        """§4.2: device-resident buffers keep transfer overhead small."""
        x = rng.random((2, 1, 32, 32))
        eng = InferenceEngine(net, INTEL_XEON_6128)
        _, _, queue = eng.run_with_queue(x)
        assert transfer_fraction(queue) < 0.05

    def test_memory_guard_applies(self, net, rng):
        x = rng.random((1, 1, 16, 16))
        eng = InferenceEngine(net, NVIDIA_V100)
        with pytest.raises(DeviceMemoryError):
            eng.run_with_queue(x, memory_bytes=100)
