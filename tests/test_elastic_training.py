"""Tests for elastic DDP on the event spine.

Covers the PR-8 re-platform: top-k compression with error feedback,
elastic membership (shrink on crash, regrow with re-broadcast), the
post-shrink exact-parity guarantee, backup-rank straggler mitigation,
and the train-trace JSONL round trip (including combined
train-then-serve traces on one shared bus).
"""

import json

import numpy as np
import pytest

import repro.nn as nn
from repro.distributed import (
    DistributedDataParallel,
    DistributedTrainer,
    ElasticDDP,
    ElasticProcessGroup,
    GlooCostModel,
    ProcessGroup,
    RankFailure,
    TopKCompressor,
    TrainingAborted,
    TrainingRunConfig,
    TrainingTimeModel,
    is_train_trace,
    make_compressor,
    train_block,
)
from repro.resilience import RankFaultConfig, RankFaultInjector, scripted_crashes
from repro.telemetry import EventBus, export_jsonl, load_jsonl


def model_factory():
    rng = np.random.default_rng(11)
    return nn.Sequential(
        nn.Conv2d(1, 2, 3, padding=1, init_std=None, rng=rng),
        nn.LeakyReLU(),
        nn.Conv2d(2, 1, 3, padding=1, init_std=None, rng=rng),
    )


def sgd_factory(params):
    return nn.SGD(params, lr=0.05, momentum=0.9)


def make_data(n=32, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 1, 5, 5))
    return x, x * 0.5


def fast_time_model():
    return TrainingTimeModel(t_min_s=0.05, t_launch_s=0.01, t_image_s=0.05,
                             grad_bytes=4096)


def run_trainer(config, faults=None, bus=None, loop=None, seed=0):
    x, y = make_data(seed=seed)
    trainer = DistributedTrainer(
        model_factory, sgd_factory, nn.MSELoss(), x, y, config,
        faults=faults, bus=bus, loop=loop)
    return trainer.run()


# ---------------------------------------------------------------------------
# Gradient compression
# ---------------------------------------------------------------------------
class TestTopKCompressor:
    def test_full_ratio_is_exact(self):
        c = TopKCompressor(ratio=1.0)
        g = np.arange(6.0).reshape(2, 3)
        out = c.compress((0, 0), g)
        assert np.array_equal(out.dense, g)
        assert out.kept == 6

    def test_keeps_largest_magnitudes(self):
        c = TopKCompressor(ratio=0.5, error_feedback=False)
        g = np.array([1.0, -5.0, 0.1, 3.0])
        out = c.compress((0, 0), g)
        assert np.array_equal(out.dense, [0.0, -5.0, 0.0, 3.0])
        assert out.kept == 2
        assert out.wire_bytes == 2 * 12  # fp64 value + int32 index per entry

    def test_error_feedback_carries_residual(self):
        c = TopKCompressor(ratio=0.25)
        g = np.array([1.0, -5.0, 0.1, 3.0])
        first = c.compress((0, 0), g)
        assert np.array_equal(first.dense, [0.0, -5.0, 0.0, 0.0])
        # Residual [1, 0, 0.1, 3] + new zero gradient: 3.0 wins next.
        second = c.compress((0, 0), np.zeros(4))
        assert np.array_equal(second.dense, [0.0, 0.0, 0.0, 3.0])

    def test_no_error_feedback_drops_residual(self):
        c = TopKCompressor(ratio=0.25, error_feedback=False)
        c.compress((0, 0), np.array([1.0, -5.0, 0.1, 3.0]))
        out = c.compress((0, 0), np.zeros(4))
        assert np.array_equal(out.dense, np.zeros(4))

    def test_reset_clears_one_ranks_residuals(self):
        c = TopKCompressor(ratio=0.25)
        c.compress((0, 0), np.array([1.0, -5.0, 0.1, 3.0]))
        c.compress((1, 0), np.array([2.0, -4.0, 0.2, 6.0]))
        c.reset(0)
        after0 = c.compress((0, 0), np.zeros(4))
        after1 = c.compress((1, 0), np.zeros(4))
        assert np.array_equal(after0.dense, np.zeros(4))  # wiped
        # Rank 1's residual survived: 6.0 went out in round one, so the
        # next-largest leftover (-4.0) surfaces now.
        assert np.array_equal(after1.dense, [0.0, -4.0, 0.0, 0.0])

    def test_make_compressor_parses_specs(self):
        assert make_compressor("none").name == "none"
        c = make_compressor("topk:0.25")
        assert isinstance(c, TopKCompressor) and c.ratio == 0.25
        with pytest.raises(ValueError):
            make_compressor("topk:0")
        with pytest.raises(ValueError):
            make_compressor("gzip")


# ---------------------------------------------------------------------------
# Elastic process group
# ---------------------------------------------------------------------------
class TestElasticProcessGroup:
    def test_membership_shrinks_and_regrows(self):
        g = ElasticProcessGroup(4)
        g.fail(2)
        assert g.active == (0, 1, 3) and not g.is_active(2)
        g.restore(2)
        assert g.active == (0, 1, 2, 3)

    def test_fail_validation(self):
        g = ElasticProcessGroup(2)
        with pytest.raises(ValueError):
            g.fail(5)
        g.fail(1)
        with pytest.raises(ValueError):
            g.restore(0)  # already active
        with pytest.raises(TrainingAborted):
            g.fail(0)  # last survivor

    def test_all_reduce_over_active_only(self):
        g = ElasticProcessGroup(3)
        g.fail(1)
        out = g.all_reduce({0: np.array([2.0]), 2: np.array([4.0])})
        assert sorted(out) == [0, 2]
        assert np.array_equal(out[0], [3.0])
        with pytest.raises(ValueError):
            g.all_reduce({0: np.array([1.0]), 1: np.array([1.0]),
                          2: np.array([1.0])})

    def test_collective_cost_tracks_membership(self):
        cm = GlooCostModel()
        g = ElasticProcessGroup(4, cm)
        g.all_reduce({r: np.zeros(16) for r in range(4)})
        t4 = g.stats.simulated_time_s
        assert t4 == pytest.approx(cm.allreduce_time(16 * 8, 4))
        g.fail(3)
        g.all_reduce({r: np.zeros(16) for r in range(3)})
        assert g.stats.simulated_time_s - t4 == pytest.approx(
            cm.allreduce_time(16 * 8, 3))

    def test_sparse_allgather_pricing(self):
        cm = GlooCostModel()
        g = ElasticProcessGroup(4, cm)
        g.all_reduce({r: np.zeros(16) for r in range(4)}, wire_bytes=24)
        assert g.stats.simulated_time_s == pytest.approx(
            cm.allgather_time(24, 4))
        assert g.stats.bytes_moved == 24 * 4


# ---------------------------------------------------------------------------
# Post-shrink exact parity — the acceptance-criteria pin
# ---------------------------------------------------------------------------
class TestShrinkParity:
    def test_post_shrink_step_equals_fresh_smaller_ring(self):
        """After losing a rank, every elastic step is *exactly* the step
        a fixed (p-1)-rank ring would take from the same state."""
        x, y = make_data(16)
        loss_fn = nn.MSELoss()
        elastic = ElasticDDP(model_factory, 3, sgd_factory)
        elastic.fail_rank(2)
        fixed = DistributedDataParallel(
            model_factory, ProcessGroup(2), sgd_factory)
        for step in range(4):
            lo = 4 * step
            shard0 = (x[lo:lo + 2], y[lo:lo + 2])
            shard1 = (x[lo + 2:lo + 4], y[lo + 2:lo + 4])
            elastic.train_step({0: shard0, 1: shard1}, loss_fn)
            fixed.train_step([shard0, shard1], loss_fn)
            ep = dict(elastic.module.named_parameters())
            fp = dict(fixed.module.named_parameters())
            for k in ep:
                assert np.array_equal(ep[k].data, fp[k].data), \
                    f"step {step}: {k} diverged"

    def test_replicas_bit_identical_through_chaos(self):
        cfg = TrainingRunConfig(world_size=4, epochs=3, seed=3,
                                time_model=fast_time_model())
        fc = RankFaultConfig(seed=3, crash_times={3: 0.3, 1: 0.8},
                             regrow_delay_s=0.6)
        report = run_trainer(cfg, RankFaultInjector(fc, 4))
        assert not report.aborted
        assert report.ddp.replicas_in_sync(atol=0.0)


# ---------------------------------------------------------------------------
# Elastic vs fixed ring under crashes
# ---------------------------------------------------------------------------
class TestElasticMembership:
    def _chaos(self, elastic: bool):
        cfg = TrainingRunConfig(world_size=6, epochs=3, elastic=elastic,
                                seed=5, time_model=fast_time_model())
        fc = RankFaultConfig(seed=5, crash_times={5: 0.2, 4: 0.5})
        return run_trainer(cfg, RankFaultInjector(fc, 6))

    def test_elastic_survives_two_crashes(self):
        report = self._chaos(elastic=True)
        s = report.summary()
        assert not s["aborted"]
        assert s["rank_crashes"] == [4, 5]
        assert s["shrinks"] == 2 and s["regrows"] == 0
        assert s["final_active"] == 4
        assert s["completed_epochs"] == 3

    def test_fixed_ring_aborts_on_first_crash(self):
        report = self._chaos(elastic=False)
        s = report.summary()
        assert s["aborted"]
        assert s["completed_epochs"] < 3

    def test_chaos_converges_into_healthy_band(self):
        cfg = TrainingRunConfig(world_size=6, epochs=3, seed=5,
                                time_model=fast_time_model())
        healthy = run_trainer(cfg).summary()
        chaos = self._chaos(elastic=True).summary()
        band = max(0.5 * healthy["final_loss"], 0.05)
        assert abs(chaos["final_loss"] - healthy["final_loss"]) <= band

    def test_regrown_rank_rejoins_in_sync_and_crashes_only_once(self):
        cfg = TrainingRunConfig(world_size=4, epochs=4, seed=2,
                                time_model=fast_time_model())
        fc = RankFaultConfig(seed=2, crash_times={3: 0.3},
                             regrow_delay_s=0.5)
        report = run_trainer(cfg, RankFaultInjector(fc, 4))
        s = report.summary()
        # A scripted crash happens once; the regrown rank must not
        # re-crash on its stale first-life crash time.
        assert s["rank_crashes"] == [3]
        assert s["shrinks"] == 1 and s["regrows"] == 1
        assert s["final_active"] == 4
        assert report.ddp.replicas_in_sync()

    def test_regrow_charges_broadcast_time(self):
        cfg = TrainingRunConfig(world_size=4, epochs=2, seed=2,
                                time_model=fast_time_model())
        crash_only = RankFaultConfig(seed=2, crash_times={3: 0.3})
        with_regrow = RankFaultConfig(seed=2, crash_times={3: 0.3},
                                      regrow_delay_s=0.5)
        t_no = run_trainer(cfg, RankFaultInjector(crash_only, 4)).summary()
        t_re = run_trainer(cfg, RankFaultInjector(with_regrow, 4)).summary()
        assert t_re["regrows"] == 1 and t_no["regrows"] == 0


# ---------------------------------------------------------------------------
# Stragglers and backup ranks
# ---------------------------------------------------------------------------
class TestBackupRanks:
    def _run(self, backup_ranks):
        cfg = TrainingRunConfig(world_size=6, epochs=2, seed=9,
                                backup_ranks=backup_ranks,
                                time_model=fast_time_model())
        fc = RankFaultConfig(seed=9, straggler_rate=0.3, straggler_factor=8.0)
        return run_trainer(cfg, RankFaultInjector(fc, 6))

    def test_backup_rank_cuts_straggler_time(self):
        slow = self._run(0).summary()
        fast = self._run(1).summary()
        assert slow["straggler_steps"] > 0
        assert fast["sim_time_s"] < slow["sim_time_s"]
        assert fast["dropped_gradients"] > 0
        assert slow["dropped_gradients"] == 0

    def test_replicas_stay_identical_despite_drops(self):
        report = self._run(2)
        assert report.ddp.replicas_in_sync()
        # Dropped gradients never abort or desync; steps all complete.
        assert report.summary()["steps"] > 0


# ---------------------------------------------------------------------------
# Compression end-to-end
# ---------------------------------------------------------------------------
class TestCompressionRuns:
    def test_topk_reduces_wire_bytes_and_converges(self):
        cfg = TrainingRunConfig(world_size=4, epochs=3, seed=4,
                                compression="topk:0.1",
                                time_model=fast_time_model())
        s = run_trainer(cfg).summary()
        assert s["wire_bytes"] < s["dense_bytes"]
        assert s["compression_saving"] > 0.5
        losses = run_trainer(cfg).losses
        assert losses[-1] < losses[0]

    def test_dense_run_reports_zero_saving(self):
        cfg = TrainingRunConfig(world_size=4, epochs=2, seed=4,
                                time_model=fast_time_model())
        s = run_trainer(cfg).summary()
        assert s["wire_bytes"] == s["dense_bytes"]
        assert s["compression_saving"] == 0.0


# ---------------------------------------------------------------------------
# Trace round trip — the accounting pin
# ---------------------------------------------------------------------------
class TestTrainTraceRoundTrip:
    def _chaos_report(self, bus=None):
        cfg = TrainingRunConfig(world_size=4, epochs=3, seed=6,
                                time_model=fast_time_model())
        fc = RankFaultConfig(seed=6, crash_times={3: 0.3, 2: 0.7},
                             regrow_delay_s=0.8)
        return run_trainer(cfg, RankFaultInjector(fc, 4), bus=bus)

    def test_chaos_trace_replays_bit_identically(self, tmp_path):
        report = self._chaos_report()
        live = train_block(report.events)
        assert live["rank_crashes"] == [2, 3]
        assert live["shrinks"] == 2 and live["regrows"] == 2
        path = tmp_path / "train.jsonl"
        export_jsonl(str(path), report.events)
        loaded = train_block(load_jsonl(str(path)))
        assert json.dumps(live, sort_keys=True) == \
            json.dumps(loaded, sort_keys=True)

    def test_trace_preserves_failure_events(self, tmp_path):
        report = self._chaos_report()
        path = tmp_path / "train.jsonl"
        export_jsonl(str(path), report.events)
        kinds = [e.kind for e in load_jsonl(str(path))]
        assert kinds.count("rank_crash") == 2
        assert kinds.count("membership_change") == 4  # 2 shrink + 2 regrow
        assert is_train_trace(load_jsonl(str(path)))

    def test_combined_train_then_serve_trace(self, tmp_path):
        from repro.serve import ServingEngine, make_workload
        from repro.serve.metrics import summarize_trace

        bus = EventBus()
        self._chaos_report(bus=bus)
        engine = ServingEngine(telemetry=bus)
        engine.run(make_workload(6, seed=1))
        live_train = train_block(bus.events)
        live_serve = summarize_trace(bus.events)
        path = tmp_path / "combined.jsonl"
        export_jsonl(str(path), bus.events)
        loaded = load_jsonl(str(path))
        assert json.dumps(live_train, sort_keys=True) == \
            json.dumps(train_block(loaded), sort_keys=True)
        assert json.dumps(live_serve, sort_keys=True) == \
            json.dumps(summarize_trace(loaded), sort_keys=True)
        assert live_serve["requests"] == 6
        assert live_train["steps"] > 0

    def test_determinism_same_seed_same_summary(self):
        a = self._chaos_report().summary()
        b = self._chaos_report().summary()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


# ---------------------------------------------------------------------------
# Rank fault injector
# ---------------------------------------------------------------------------
class TestRankFaultInjector:
    def test_scripted_crashes_highest_ranks_mid_epoch(self):
        times = scripted_crashes(2, 8, epoch_time_s=10.0)
        assert sorted(times) == [6, 7]
        assert all(3.0 <= t <= 8.0 for t in times.values())
        assert scripted_crashes(0, 8, 10.0) == {}
        assert len(scripted_crashes(9, 4, 10.0)) == 3  # capped at p-1

    def test_explicit_schedule_does_not_shift_other_streams(self):
        base = RankFaultInjector(RankFaultConfig(seed=1, mttf_s=100.0), 4)
        pinned = RankFaultInjector(
            RankFaultConfig(seed=1, mttf_s=100.0, crash_times={1: 5.0}), 4)
        for rank in (0, 2, 3):
            assert base.crash_time(rank) == pinned.crash_time(rank)
        assert pinned.crash_time(1) == 5.0

    def test_max_crashes_keeps_earliest(self):
        inj = RankFaultInjector(
            RankFaultConfig(seed=1, mttf_s=10.0, max_crashes=1), 4)
        finite = [r for r in range(4)
                  if np.isfinite(inj.crash_time(r))]
        assert len(finite) == 1

    def test_straggler_draws_are_deterministic(self):
        cfg = RankFaultConfig(seed=2, straggler_rate=0.5,
                              straggler_factor=3.0)
        a = RankFaultInjector(cfg, 4)
        b = RankFaultInjector(cfg, 4)
        draws = [(r, s) for r in range(4) for s in range(10)]
        assert [a.straggler_factor(r, s) for r, s in draws] == \
            [b.straggler_factor(r, s) for r, s in draws]
        assert any(a.straggler_factor(r, s) == 3.0 for r, s in draws)

    def test_redraw_crash_never_repeats_scripted_fate(self):
        inj = RankFaultInjector(
            RankFaultConfig(seed=1, crash_times={2: 5.0}), 4)
        assert inj.redraw_crash(2, incarnation=1, now=7.0) == np.inf
        finite = RankFaultInjector(
            RankFaultConfig(seed=1, mttf_s=10.0), 4)
        t = finite.redraw_crash(2, incarnation=1, now=7.0)
        assert t > 7.0


# ---------------------------------------------------------------------------
# Config validation and abort edge cases
# ---------------------------------------------------------------------------
class TestRunConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingRunConfig(world_size=0)
        with pytest.raises(ValueError):
            TrainingRunConfig(world_size=2, backup_ranks=2)
        with pytest.raises(ValueError):
            TrainingRunConfig(world_size=2, epochs=0)

    def test_fixed_ring_fail_raises_rank_failure(self):
        ddp = ElasticDDP(model_factory, 2, sgd_factory, elastic=False)
        with pytest.raises(RankFailure):
            ddp.fail_rank(1)

    def test_all_ranks_crashing_aborts_even_elastic(self):
        cfg = TrainingRunConfig(world_size=2, epochs=2, seed=8,
                                time_model=fast_time_model())
        fc = RankFaultConfig(seed=8, crash_times={0: 0.2, 1: 0.2})
        report = run_trainer(cfg, RankFaultInjector(fc, 2))
        assert report.aborted
        assert report.summary()["aborted"]
