"""Tests for the §7 dual-domain (projection + image) enhancement."""

import numpy as np
import pytest

from repro.ct import hu_to_mu, paper_geometry
from repro.ct.fbp import fbp_reconstruct
from repro.data.phantom import ChestPhantomConfig, chest_slice
from repro.metrics import mse
from repro.pipeline import DualDomainEnhancer, SinogramDenoiser, make_sinogram_pairs

SIZE = 32
PX = 350.0 / SIZE


@pytest.fixture(scope="module")
def sino_data():
    geo = paper_geometry(scale=SIZE / 512)
    images = [hu_to_mu(chest_slice(ChestPhantomConfig(size=SIZE), np.random.default_rng(i)))
              for i in range(14)]
    noisy, clean = make_sinogram_pairs(images, geo, blank_scan=400.0, pixel_size=PX,
                                       rng=np.random.default_rng(0))
    return geo, images, noisy, clean


@pytest.fixture(scope="module")
def trained_denoiser(sino_data):
    _, _, noisy, clean = sino_data
    den = SinogramDenoiser(base=6, depth=2, lr=5e-3, rng=np.random.default_rng(1))
    den.train(noisy[:12], clean[:12], epochs=25)
    return den


class TestSinogramPairs:
    def test_pair_shapes_match_geometry(self, sino_data):
        geo, _, noisy, clean = sino_data
        assert noisy[0].shape == (geo.num_views, geo.num_detectors)
        assert clean[0].shape == noisy[0].shape

    def test_noise_present(self, sino_data):
        _, _, noisy, clean = sino_data
        assert mse(noisy[0], clean[0]) > 1e-3


class TestSinogramDenoiser:
    def test_training_reduces_loss(self, trained_denoiser):
        h = trained_denoiser.history
        assert h.train_loss[-1] < h.train_loss[0]

    def test_denoising_improves_heldout_sinograms(self, sino_data, trained_denoiser):
        _, _, noisy, clean = sino_data
        before = np.mean([mse(noisy[i], clean[i]) for i in (12, 13)])
        after = np.mean([mse(trained_denoiser.denoise(noisy[i]), clean[i]) for i in (12, 13)])
        assert after < before

    def test_denoising_improves_reconstruction(self, sino_data, trained_denoiser):
        geo, _, noisy, clean = sino_data
        def recon(s):
            return fbp_reconstruct(s, geo, SIZE, PX, "hann")
        img_err_before = np.mean([
            mse(recon(noisy[i]), recon(clean[i])) for i in (12, 13)
        ])
        img_err_after = np.mean([
            mse(recon(trained_denoiser.denoise(noisy[i])), recon(clean[i])) for i in (12, 13)
        ])
        assert img_err_after < img_err_before

    def test_denoise_preserves_shape(self, sino_data, trained_denoiser):
        _, _, noisy, _ = sino_data
        out = trained_denoiser.denoise(noisy[0])
        assert out.shape == noisy[0].shape

    def test_denoise_validates_input(self, trained_denoiser):
        with pytest.raises(ValueError):
            trained_denoiser.denoise(np.zeros((4, 4, 4)))

    def test_train_validates_inputs(self):
        den = SinogramDenoiser()
        with pytest.raises(ValueError):
            den.train([], [])
        with pytest.raises(ValueError):
            den.train([np.zeros((4, 4))], [])


class TestDualDomainEnhancer:
    def test_reconstruct_roundtrip(self, sino_data, trained_denoiser):
        geo, images, noisy, clean = sino_data
        dd = DualDomainEnhancer(trained_denoiser, geo, SIZE, PX)
        rec = dd.reconstruct(noisy[12])
        assert rec.shape == (SIZE, SIZE)
        raw = dd.reconstruct(noisy[12], denoise=False)
        truth = fbp_reconstruct(clean[12], geo, SIZE, PX, "hann")
        assert mse(rec, truth) < mse(raw, truth)

    def test_enhance_without_image_stage(self, sino_data, trained_denoiser):
        geo, _, noisy, _ = sino_data
        dd = DualDomainEnhancer(trained_denoiser, geo, SIZE, PX, image_enhancer=None)
        from repro.ct.hounsfield import mu_to_hu, normalize_unit

        unit = dd.enhance(noisy[12], lambda m: normalize_unit(mu_to_hu(m)))
        assert unit.shape == (SIZE, SIZE)
        assert 0.0 <= unit.min() and unit.max() <= 1.0
