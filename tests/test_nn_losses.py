"""Tests for loss functions, including Eq. 1's composite loss."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.losses import ms_ssim, ssim
from repro.metrics import image as metrics_image
from repro.tensor import Tensor
from repro.tensor.gradcheck import gradcheck


def t(arr):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=True)


class TestBasicLosses:
    def test_mse_value(self):
        loss = nn.MSELoss()(Tensor(np.array([1.0, 2.0])), Tensor(np.array([0.0, 0.0])))
        assert np.isclose(loss.item(), 2.5)

    def test_mse_gradcheck(self, rng):
        pred = t(rng.normal(size=(2, 3)))
        target = Tensor(rng.normal(size=(2, 3)))
        assert gradcheck(lambda p: nn.MSELoss()(p, target), [pred])

    def test_l1_value(self):
        loss = nn.L1Loss()(Tensor(np.array([1.0, -2.0])), Tensor(np.zeros(2)))
        assert np.isclose(loss.item(), 1.5)

    def test_bce_matches_formula(self, rng):
        p = rng.uniform(0.05, 0.95, size=10)
        y = (rng.random(10) > 0.5).astype(float)
        loss = nn.BCELoss()(Tensor(p), Tensor(y)).item()
        expect = -np.mean(y * np.log(p) + (1 - y) * np.log(1 - p))
        assert np.isclose(loss, expect)

    def test_bce_gradcheck(self, rng):
        p = t(rng.uniform(0.2, 0.8, size=6))
        y = Tensor((rng.random(6) > 0.5).astype(float))
        assert gradcheck(lambda pp: nn.BCELoss()(pp, y), [p])

    def test_bce_with_logits_matches_bce(self, rng):
        z = rng.normal(size=8)
        y = (rng.random(8) > 0.5).astype(float)
        from repro.tensor import functional as F

        a = nn.BCEWithLogitsLoss()(Tensor(z), Tensor(y)).item()
        b = nn.BCELoss()(F.sigmoid(Tensor(z)), Tensor(y)).item()
        assert np.isclose(a, b, atol=1e-6)

    def test_bce_with_logits_stable_at_extremes(self):
        loss = nn.BCEWithLogitsLoss()(Tensor(np.array([100.0, -100.0])),
                                      Tensor(np.array([1.0, 0.0])))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6

    def test_bce_clamps_zero_one(self):
        loss = nn.BCELoss()(Tensor(np.array([0.0, 1.0])), Tensor(np.array([0.0, 1.0])))
        assert np.isfinite(loss.item())


class TestSSIM:
    def test_identical_images(self, rng):
        x = Tensor(rng.random((1, 1, 24, 24)))
        assert np.isclose(ssim(x, x, window_size=7).item(), 1.0)

    def test_ssim_decreases_with_noise(self, rng):
        x = rng.random((1, 1, 32, 32))
        mild = x + rng.normal(0, 0.05, x.shape)
        heavy = x + rng.normal(0, 0.3, x.shape)
        s_mild = ssim(Tensor(x), Tensor(mild), window_size=7).item()
        s_heavy = ssim(Tensor(x), Tensor(heavy), window_size=7).item()
        assert s_heavy < s_mild < 1.0

    def test_msssim_identical(self, rng):
        x = Tensor(rng.random((1, 1, 32, 32)))
        assert np.isclose(ms_ssim(x, x, levels=2, window_size=7).item(), 1.0, atol=1e-8)

    def test_msssim_level_limit(self, rng):
        x = Tensor(rng.random((1, 1, 16, 16)))
        with pytest.raises(ValueError):
            ms_ssim(x, x, levels=5, window_size=11)

    def test_msssim_matches_numpy_metric(self, rng):
        a = rng.random((40, 40))
        b = np.clip(a + rng.normal(0, 0.1, a.shape), 0, 1)
        loss_val = ms_ssim(Tensor(a[None, None]), Tensor(b[None, None]),
                           levels=2, window_size=7).item()
        metric_val = metrics_image.ms_ssim(a, b, levels=2, window_size=7)
        assert np.isclose(loss_val, metric_val, atol=1e-6)

    def test_ssim_matches_numpy_metric(self, rng):
        a = rng.random((24, 24))
        b = np.clip(a + rng.normal(0, 0.2, a.shape), 0, 1)
        assert np.isclose(
            ssim(Tensor(a[None, None]), Tensor(b[None, None]), window_size=7).item(),
            metrics_image.ssim(a, b, window_size=7),
            atol=1e-6,
        )

    def test_msssim_gradcheck(self, rng):
        a = t(rng.random((1, 1, 16, 16)))
        b = Tensor(rng.random((1, 1, 16, 16)))
        assert gradcheck(
            lambda x: ms_ssim(x, b, levels=1, window_size=5), [a], eps=1e-5, atol=1e-3
        )


class TestCompositeLoss:
    def test_zero_for_identical(self, rng):
        x = Tensor(rng.random((1, 1, 32, 32)))
        loss = nn.CompositeLoss(levels=2, window_size=7)(x, x)
        assert loss.item() < 1e-10

    def test_eq1_structure(self, rng):
        """Composite = MSE + 0.1 (1 − MS-SSIM), exactly."""
        pred = Tensor(rng.random((1, 1, 32, 32)))
        target = Tensor(rng.random((1, 1, 32, 32)))
        comp = nn.CompositeLoss(alpha=0.1, levels=2, window_size=7)(pred, target).item()
        mse = nn.MSELoss()(pred, target).item()
        ms = ms_ssim(pred, target, levels=2, window_size=7).item()
        assert np.isclose(comp, mse + 0.1 * (1.0 - ms), atol=1e-10)

    def test_backward_flows(self, rng):
        pred = t(rng.random((1, 1, 32, 32)))
        target = Tensor(rng.random((1, 1, 32, 32)))
        loss = nn.CompositeLoss(levels=2, window_size=7)(pred, target)
        loss.backward()
        assert pred.grad is not None
        assert np.abs(pred.grad).max() > 0
