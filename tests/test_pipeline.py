"""Tests for the three AI tools and the assembled framework."""

import numpy as np
import pytest

import repro.nn as nn
from repro.data import chest_volume, make_enhancement_pairs
from repro.data.datasets import ClassificationDataset, EnhancementDataset
from repro.models import DDnet, DenseNet3D
from repro.pipeline import (
    ClassificationAI,
    ComputeCovid19Plus,
    EnhancementAI,
    SegmentationAI,
    Trainer,
    threshold_lung_mask,
)


def tiny_ddnet(seed=0):
    return DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                 dense_kernel=3, deconv_kernel=3, init_std=None,
                 rng=np.random.default_rng(seed))


def tiny_densenet(seed=0):
    return DenseNet3D(block_layers=(1, 1, 1, 1), growth=4, init_features=4,
                      rng=np.random.default_rng(seed))


class TestTrainer:
    def test_records_history(self, rng):
        model = nn.Sequential(nn.Linear(4, 1))
        ds = nn.TensorDataset(rng.normal(size=(8, 4)), rng.normal(size=(8, 1)))
        opt = nn.Adam(model.parameters(), lr=1e-2)
        trainer = Trainer(model, opt, nn.MSELoss())
        hist = trainer.fit(nn.DataLoader(ds, batch_size=4), epochs=3)
        assert hist.epochs == 3
        assert len(hist.lr) == 3

    def test_validation_loss_tracked(self, rng):
        model = nn.Sequential(nn.Linear(4, 1))
        ds = nn.TensorDataset(rng.normal(size=(8, 4)), rng.normal(size=(8, 1)))
        opt = nn.Adam(model.parameters(), lr=1e-2)
        hist = Trainer(model, opt, nn.MSELoss()).fit(
            nn.DataLoader(ds, batch_size=4), epochs=2, val_loader=nn.DataLoader(ds, batch_size=4)
        )
        assert len(hist.val_loss) == 2

    def test_scheduler_steps_each_epoch(self, rng):
        model = nn.Sequential(nn.Linear(2, 1))
        ds = nn.TensorDataset(rng.normal(size=(4, 2)), rng.normal(size=(4, 1)))
        opt = nn.Adam(model.parameters(), lr=1e-3)
        sched = nn.ExponentialLR(opt, gamma=0.8)
        Trainer(model, opt, nn.MSELoss(), sched).fit(nn.DataLoader(ds, batch_size=2), epochs=3)
        assert np.isclose(opt.lr, 1e-3 * 0.8**3)

    def test_zero_epochs_rejected(self, rng):
        model = nn.Sequential(nn.Linear(2, 1))
        ds = nn.TensorDataset(rng.normal(size=(2, 2)), rng.normal(size=(2, 1)))
        opt = nn.Adam(model.parameters(), lr=1e-3)
        with pytest.raises(ValueError):
            Trainer(model, opt, nn.MSELoss()).fit(nn.DataLoader(ds), epochs=0)

    def test_linear_regression_converges(self, rng):
        model = nn.Sequential(nn.Linear(3, 1))
        w_true = np.array([[1.0], [-2.0], [0.5]])
        x = rng.normal(size=(32, 3))
        y = x @ w_true
        ds = nn.TensorDataset(x, y)
        opt = nn.Adam(model.parameters(), lr=5e-2)
        hist = Trainer(model, opt, nn.MSELoss()).fit(nn.DataLoader(ds, batch_size=8), epochs=30)
        assert hist.train_loss[-1] < hist.train_loss[0] * 0.05


class TestEnhancementAI:
    def test_training_reduces_composite_loss(self, rng):
        lows, fulls = make_enhancement_pairs(6, size=16, physics=False,
                                             blank_scan=300.0, rng=rng)
        ds = EnhancementDataset(lows, fulls)
        ai = EnhancementAI(model=tiny_ddnet(), lr=3e-3, msssim_levels=1, msssim_window=5)
        hist = ai.train(ds, epochs=6, batch_size=2)
        assert hist.improved()

    def test_enhance_slice_shape_and_range(self, rng):
        ai = EnhancementAI(model=tiny_ddnet(), msssim_levels=1, msssim_window=5)
        out = ai.enhance_slice(rng.random((16, 16)))
        assert out.shape == (16, 16)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_enhance_volume_chunked(self, rng):
        ai = EnhancementAI(model=tiny_ddnet(), msssim_levels=1, msssim_window=5)
        vol = rng.random((5, 16, 16))
        out = ai.enhance_volume(vol, chunk=2)
        assert out.shape == vol.shape

    def test_shape_validation(self, rng):
        ai = EnhancementAI(model=tiny_ddnet())
        with pytest.raises(ValueError):
            ai.enhance_slice(rng.random((4, 16, 16)))
        with pytest.raises(ValueError):
            ai.enhance_volume(rng.random((16, 16)))

    def test_save_load_roundtrip(self, rng, tmp_path):
        ai = EnhancementAI(model=tiny_ddnet(1))
        path = str(tmp_path / "ddnet.npz")
        ai.save(path)
        ai2 = EnhancementAI(model=tiny_ddnet(2))
        ai2.load(path)
        x = rng.random((16, 16))
        assert np.allclose(ai.enhance_slice(x), ai2.enhance_slice(x))


class TestSegmentationAI:
    def test_threshold_mask_finds_lungs(self, rng):
        vol = chest_volume(48, 8, rng=rng)
        mask = threshold_lung_mask(vol)
        assert 0.03 < mask.mean() < 0.5
        # Everything the mask keeps must be lung-dark or a filled lesion.
        assert (vol[mask] < 200).all()

    def test_mask_excludes_exterior_air(self, rng):
        vol = chest_volume(48, 8, rng=rng)
        mask = threshold_lung_mask(vol)
        assert not mask[:, 0, :].any()      # image border is outside air
        assert not mask[:, :, 0].any()

    def test_lesions_survive_masking(self):
        vol, lesions = chest_volume(48, 8, covid=True, num_lesions=2,
                                    rng=np.random.default_rng(3), return_lesion_mask=True)
        seg = SegmentationAI()
        segmented, mask = seg.apply(vol)
        # Most lesion voxels stay in the lung field after hole filling.
        kept = (lesions & mask).sum() / lesions.sum()
        assert kept > 0.5

    def test_apply_background_is_air(self, rng):
        vol = chest_volume(32, 8, rng=rng)
        segmented, mask = SegmentationAI().apply(vol)
        assert np.all(segmented[~mask] == -1000.0)
        assert np.array_equal(segmented[mask], vol[mask])

    def test_ahnet_backend_requires_model(self):
        with pytest.raises(ValueError):
            SegmentationAI(backend="ahnet")
        with pytest.raises(ValueError):
            SegmentationAI(backend="unet")

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            threshold_lung_mask(rng.normal(size=(8, 8)))


class TestClassificationAI:
    def test_training_separates_classes(self):
        ds = ClassificationDataset.generate(4, 4, size=16, num_slices=16,
                                            rng=np.random.default_rng(0))
        ai = ClassificationAI(model=tiny_densenet(), lr=3e-3)
        hist = ai.train(ds, epochs=8, batch_size=4)
        assert hist.improved()

    def test_predict_proba_range(self, rng):
        ai = ClassificationAI(model=tiny_densenet())
        vol = chest_volume(16, 16, rng=rng)
        p = ai.predict_proba(vol)
        assert 0.0 < p < 1.0

    def test_predict_threshold(self, rng):
        ai = ClassificationAI(model=tiny_densenet())
        vol = chest_volume(16, 16, rng=rng)
        p = ai.predict_proba(vol)
        assert ai.predict(vol, threshold=p - 0.01) == 1
        assert ai.predict(vol, threshold=p + 0.01) == 0

    def test_shape_validation(self, rng):
        ai = ClassificationAI(model=tiny_densenet())
        with pytest.raises(ValueError):
            ai.predict_proba(rng.normal(size=(16, 16)))


class TestFramework:
    @pytest.fixture(scope="class")
    def framework(self):
        return ComputeCovid19Plus(
            enhancement=EnhancementAI(model=tiny_ddnet(), msssim_levels=1, msssim_window=5),
            classification=ClassificationAI(model=tiny_densenet()),
            use_enhancement=True,
        )

    def test_diagnose_returns_result(self, framework, rng):
        vol = chest_volume(16, 16, covid=True, rng=rng)
        res = framework.diagnose(vol)
        assert 0.0 <= res.probability <= 1.0
        assert res.prediction in (0, 1)
        assert res.enhanced
        assert res.lung_mask.shape == vol.shape
        assert "COVID-19" in res.label

    def test_enhancement_stage_toggles(self, rng):
        vol = chest_volume(16, 16, rng=np.random.default_rng(1))
        with_enh = ComputeCovid19Plus(
            enhancement=EnhancementAI(model=tiny_ddnet(5), msssim_levels=1, msssim_window=5),
            classification=ClassificationAI(model=tiny_densenet()),
            use_enhancement=True,
        )
        without = ComputeCovid19Plus(
            classification=with_enh.classification, use_enhancement=False,
        )
        r1, r2 = with_enh.diagnose(vol), without.diagnose(vol)
        assert r1.enhanced and not r2.enhanced

    def test_diagnose_batch_matches_diagnose(self, framework):
        vols = [chest_volume(16, 16, covid=bool(i % 2), rng=np.random.default_rng(50 + i))
                for i in range(3)]
        batch = framework.diagnose_batch(vols)
        singles = [framework.diagnose(v) for v in vols]
        assert len(batch) == 3
        for b, s in zip(batch, singles):
            assert b.probability == pytest.approx(s.probability, abs=1e-9)
            assert b.prediction == s.prediction
            assert b.enhanced == s.enhanced
            np.testing.assert_array_equal(b.lung_mask, s.lung_mask)

    def test_diagnose_batch_mixed_depths(self, framework):
        vols = [chest_volume(16, 16, rng=np.random.default_rng(60)),
                chest_volume(16, 32, rng=np.random.default_rng(61))]
        results = framework.diagnose_batch(vols)
        for r, v in zip(results, vols):
            assert r.segmented_volume.shape == v.shape
            assert 0.0 <= r.probability <= 1.0

    def test_diagnose_batch_validation(self, framework, rng):
        assert framework.diagnose_batch([]) == []
        with pytest.raises(ValueError):
            framework.diagnose_batch([rng.normal(size=(16, 16))])
        with pytest.raises(ValueError):
            framework.diagnose_batch([chest_volume(16, 16, rng=rng),
                                      chest_volume(32, 16, rng=rng)])

    def test_score_batch(self, framework, rng):
        vols = [chest_volume(16, 16, covid=bool(i % 2), rng=np.random.default_rng(i))
                for i in range(3)]
        scores = framework.score_batch(vols)
        assert scores.shape == (3,)

    def test_calibrate_threshold(self, framework):
        vols = [chest_volume(16, 16, covid=bool(i % 2), rng=np.random.default_rng(10 + i))
                for i in range(4)]
        labels = [i % 2 for i in range(4)]
        t = framework.calibrate_threshold(vols, labels)
        assert 0.0 <= t <= 1.0
        assert framework.threshold == t

    def test_shape_validation(self, framework, rng):
        with pytest.raises(ValueError):
            framework.diagnose(rng.normal(size=(16, 16)))

    def test_hu_roundtrip_through_enhancement(self, framework, rng):
        vol = chest_volume(16, 16, rng=rng)
        out = framework.enhance_volume_hu(vol)
        assert out.shape == vol.shape
        # Output stays within the display window used for normalization.
        assert out.min() >= -1400.0 - 1e-6
        assert out.max() <= 200.0 + 1e-6
