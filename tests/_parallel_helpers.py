"""Module-level (picklable) work items for the repro.parallel tests."""


def write_index(i, out):
    """Write item index ``i`` into slot ``i`` of a shared output array."""
    out.asarray()[i] = float(i)
    return i
