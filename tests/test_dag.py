"""Tests for ``repro.dag``: stage-graph serving with placement,
pipelining, model residency, and the intermediate-artifact fast path."""

import numpy as np
import pytest

from repro.dag import (
    ArtifactCache,
    ModelResidency,
    StageFn,
    StageGraph,
    build_stage,
    covid_stage_graph,
)
from repro.dag.bench import run_dag_bench
from repro.dag.stage import EXEC_BATCH_SIZES, FPGA_MODEL_SWAP_S, HOST_LINK_GB_S
from repro.hetero import DEVICES, INTEL_ARRIA10, NVIDIA_T4, NVIDIA_V100
from repro.resilience import FaultConfig, ResilienceConfig
from repro.serve import ServingEngine, make_workload, seir_arrivals
from repro.serve.metrics import summarize, summarize_trace
from repro.telemetry import EventBus, MetricsRegistry, export_jsonl, load_jsonl


def stage_fn(name="enhance", model="DDnet", space=1.5, times=None):
    times = times or {b: 0.1 * b for b in EXEC_BATCH_SIZES}
    return StageFn(name=name, model=model, space_gb=space,
                   pre_s={n: 0.01 for n in DEVICES},
                   input_mb=30.0, output_mb=30.0,
                   exec_b={n: dict(times) for n in DEVICES})


# ---------------------------------------------------------------------------
class TestStageFn:
    def test_exec_time_exact_at_grid(self):
        fn = stage_fn()
        for b in EXEC_BATCH_SIZES:
            assert fn.exec_time(NVIDIA_V100, b) == pytest.approx(0.1 * b)

    def test_exec_time_interpolates_and_extrapolates(self):
        fn = stage_fn()
        assert fn.exec_time(NVIDIA_V100, 3) == pytest.approx(0.3)
        assert fn.exec_time(NVIDIA_V100, 32) == pytest.approx(3.2)
        with pytest.raises(ValueError):
            fn.exec_time(NVIDIA_V100, 0)

    def test_transfer_time_scales_with_batch(self):
        fn = stage_fn()
        one = fn.transfer_time(1)
        assert one == pytest.approx(60.0 / 1e3 / HOST_LINK_GB_S)
        assert fn.transfer_time(4) == pytest.approx(4 * one)

    def test_resources_is_a_clockwork_record(self):
        fn = stage_fn()
        rec = fn.resources(NVIDIA_V100)
        assert rec["space"] == fn.space_gb
        assert rec["pre"] == fn.pre_s[NVIDIA_V100.name]
        for b in EXEC_BATCH_SIZES:
            assert rec[f"exec_b{b}"] == pytest.approx(0.1 * b)
        assert rec["input"] == fn.input_mb and rec["output"] == fn.output_mb

    def test_build_stage_samples_service_model(self):
        from repro.serve import ServiceTimeModel

        sm = ServiceTimeModel()
        fn = build_stage("enhance", "DDnet", 1.6, 30.0, 30.0, sm,
                         list(DEVICES.values()))
        for b in EXEC_BATCH_SIZES:
            assert fn.exec_time(NVIDIA_V100, b) == pytest.approx(
                sm.batch_time(NVIDIA_V100, "enhance", b))
        # FPGA pays the reconfiguration stall to swap weights in;
        # PCIe-attached devices pay space / link bandwidth.
        assert fn.pre_s[INTEL_ARRIA10.name] == FPGA_MODEL_SWAP_S
        assert fn.pre_s[NVIDIA_V100.name] == pytest.approx(1.6 / HOST_LINK_GB_S)


# ---------------------------------------------------------------------------
class TestStageGraph:
    def test_covid_graph_structure(self):
        g = covid_stage_graph()
        assert g.stage_names == ("enhance", "segment", "classify")
        assert g.skippable == ("enhance",)
        assert g.next_stage("enhance") == "segment"
        assert g.next_stage("classify") is None
        assert g.entry_after("segment") == "classify"
        models = {s.name: s.model for s in g.stages}
        assert models == {"enhance": "DDnet", "segment": "AH-Net",
                          "classify": "DenseNet3D-121"}

    def test_no_enhancement_arm_drops_the_stage(self):
        g = covid_stage_graph(use_enhancement=False)
        assert g.stage_names == ("segment", "classify")
        assert g.skippable == ()

    def test_sanity_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            StageGraph("bad", (stage_fn("a"), stage_fn("a")))

    def test_sanity_rejects_skippable_final_stage(self):
        with pytest.raises(ValueError):
            StageGraph("bad", (stage_fn("a"), stage_fn("b")),
                       skippable=("b",))

    def test_sanity_rejects_decreasing_exec_times(self):
        times = {b: 1.0 / b for b in EXEC_BATCH_SIZES}
        with pytest.raises(ValueError):
            StageGraph("bad", (stage_fn("a", times=times),))


# ---------------------------------------------------------------------------
class TestModelResidency:
    def test_resident_model_costs_nothing(self):
        res = ModelResidency([NVIDIA_V100])
        fn = stage_fn()
        first = res.ensure(NVIDIA_V100, fn, 0.0)
        assert first > 0
        assert res.ensure(NVIDIA_V100, fn, 1.0) == 0.0
        assert res.load_penalty(NVIDIA_V100, fn) == 0.0

    def test_fpga_swap_penalty_is_the_reconfig_stall(self):
        from repro.serve import ServiceTimeModel

        fn = build_stage("classify", "DenseNet3D-121", 0.5, 30.0, 1e-3,
                         ServiceTimeModel(), [INTEL_ARRIA10, NVIDIA_V100])
        res = ModelResidency([INTEL_ARRIA10])
        assert res.ensure(INTEL_ARRIA10, fn, 0.0) == FPGA_MODEL_SWAP_S
        assert FPGA_MODEL_SWAP_S == FaultConfig().reconfig_stall_s

    def test_lru_eviction_on_small_device(self):
        bus, reg = EventBus(), MetricsRegistry()
        res = ModelResidency([INTEL_ARRIA10], bus=bus, registry=reg)  # 2 GB
        a, b = stage_fn("a", "A", 1.5), stage_fn("b", "B", 1.5)
        res.ensure(INTEL_ARRIA10, a, 0.0)
        res.ensure(INTEL_ARRIA10, b, 1.0)  # evicts A
        assert res.ensure(INTEL_ARRIA10, a, 2.0) > 0  # A gone again
        assert res.evictions == 2
        assert res.swaps == 3
        swaps = bus.of_kind("model_swap")
        assert len(swaps) == 3
        assert swaps[1].payload["evicted"] == ["A"]
        assert reg.counter("serve.dag.model_swaps").value == 3
        assert reg.counter("serve.dag.model_evictions").value == 2

    def test_oversized_model_never_becomes_resident(self):
        res = ModelResidency([INTEL_ARRIA10])
        huge = stage_fn("huge", "HUGE", space=8.0)
        assert res.ensure(INTEL_ARRIA10, huge, 0.0) > 0
        assert res.ensure(INTEL_ARRIA10, huge, 1.0) > 0  # pays every time
        assert res.snapshot()[INTEL_ARRIA10.name] == []


# ---------------------------------------------------------------------------
class TestArtifactCache:
    def test_deepest_counts_one_hit_or_miss(self):
        cache = ArtifactCache(capacity_mb=100.0)
        cache.put("k", "enhance", 10 * 10 ** 6)
        assert cache.deepest("k", ["segment", "enhance"]) == "enhance"
        assert cache.deepest("other", ["segment", "enhance"]) is None
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1

    def test_deepest_prefers_later_stage(self):
        cache = ArtifactCache(capacity_mb=100.0)
        cache.put("k", "enhance", 10 ** 6)
        cache.put("k", "segment", 10 ** 6)
        assert cache.deepest("k", ["segment", "enhance"]) == "segment"

    def test_byte_bounded_lru_eviction(self):
        reg = MetricsRegistry()
        cache = ArtifactCache(capacity_mb=25.0, registry=reg)
        for i in range(3):
            cache.put(f"k{i}", "enhance", 10 * 10 ** 6)
        s = cache.stats()
        assert s["evictions"] == 1 and s["entries"] == 2
        assert s["resident_bytes"] == 20 * 10 ** 6
        assert cache.deepest("k0", ["enhance"]) is None  # oldest evicted
        # Registry mirrors the cache's own accounting.
        assert reg.counter("serve.cache.artifact.evictions").value == 1
        assert reg.gauge("serve.cache.artifact.resident_bytes").value == s["resident_bytes"]
        assert reg.gauge("serve.cache.artifact.entries").value == 2


# ---------------------------------------------------------------------------
class TestEpiArrivals:
    def test_monotone_deterministic_and_validated(self):
        rng = np.random.default_rng(5)
        t, phase = seir_arrivals(100, 4.0, rng)
        t2, phase2 = seir_arrivals(100, 4.0, np.random.default_rng(5))
        assert np.all(np.diff(t) >= 0) and np.all(t >= 0)
        assert np.array_equal(t, t2) and np.array_equal(phase, phase2)
        assert np.all((phase >= 0) & (phase <= 1))
        assert np.all(np.diff(phase) >= 0)
        with pytest.raises(ValueError):
            seir_arrivals(10, 0.0, rng)

    def test_epi_workload_monitoring_concentrates_late(self):
        reqs = make_workload(400, rate_per_s=8.0, pattern="epi", seed=9,
                             monitor_fraction=0.4)
        mon = [r.arrival_s for r in reqs if r.kind == "monitoring"]
        dia = [r.arrival_s for r in reqs if r.kind == "diagnosis"]
        assert mon and dia
        # Monitoring probability scales with the cumulative wave phase,
        # so re-reads cluster after the wave has built up.
        assert np.mean(mon) > np.mean(dia)

    def test_epi_smoke_run_serves_the_stream(self):
        reqs = make_workload(60, rate_per_s=10.0, pattern="epi", seed=3,
                             monitor_fraction=0.3)
        rep = ServingEngine(fleet="gpus", queue_capacity=1000).run(reqs)
        s = rep.summary()
        assert s["completed"] + s["shed_timeout"] == s["requests"]


# ---------------------------------------------------------------------------
class TestServeModes:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            ServingEngine(mode="fused")
        with pytest.raises(ValueError):
            ServingEngine(mode="monolithic", use_enhancement=False)

    def test_monolithic_dispatches_one_pseudo_stage(self):
        reqs = make_workload(20, rate_per_s=10.0, seed=1)
        eng = ServingEngine(mode="monolithic", fleet="gpus",
                            queue_capacity=1000)
        rep = eng.run(reqs)
        stages = {e.payload["stage"] for e in rep.events
                  if e.kind == "dispatch"}
        assert stages == {"pipeline"}
        assert rep.summary()["mode"] == "monolithic"

    def test_dag_mode_emits_stage_events(self):
        reqs = make_workload(30, rate_per_s=10.0, seed=1, dup_fraction=0.3)
        eng = ServingEngine(mode="dag", fleet="mixed", queue_capacity=1000)
        rep = eng.run(reqs)
        kinds = {e.kind for e in rep.events}
        assert {"stage_start", "stage_complete", "model_swap"} <= kinds
        s = rep.summary()
        assert s["model_swaps"] > 0
        assert set(s["stage_completions"]) <= {"enhance", "segment", "classify"}
        assert s["artifact_cache"]["hits"] == s["artifact_entries"]

    def test_release_volume_frees_memoized_scans(self):
        # Satellite 1 regression: terminal requests must not pin their
        # synthesized volume (a serving run over N requests held N
        # full volumes in memory before).
        reqs = make_workload(10, rate_per_s=10.0, seed=2)
        for r in reqs:
            r.materialize()
            assert getattr(r, "_volume", None) is not None
        rep = ServingEngine(fleet="gpus", queue_capacity=1000).run(reqs)
        for r in rep.completed + rep.shed:
            assert getattr(r.request, "_volume", None) is None
        # Released requests still re-materialize deterministically.
        vol = reqs[0].materialize()
        assert vol.shape == (reqs[0].slices, reqs[0].size, reqs[0].size)

    def test_release_volume_is_idempotent(self):
        r = make_workload(1, rate_per_s=1.0, seed=0)[0]
        r.release_volume()  # nothing memoized: safe no-op
        r.materialize()
        r.release_volume()
        assert getattr(r, "_volume", None) is None


# ---------------------------------------------------------------------------
class TestCacheObservability:
    def test_result_cache_counters_mirror_registry(self):
        from repro.serve import ResultCache

        reg = MetricsRegistry()
        cache = ResultCache(capacity=2, registry=reg)
        cache.get("a")
        cache.put("a", object())
        cache.get("a")
        cache.put("b", object())
        cache.put("c", object())  # evicts "a"
        s = cache.stats()
        assert (s["hits"], s["misses"], s["evictions"]) == (1, 1, 1)
        assert reg.counter("serve.cache.result.hits").value == 1
        assert reg.counter("serve.cache.result.misses").value == 1
        assert reg.counter("serve.cache.result.evictions").value == 1
        assert reg.gauge("serve.cache.result.resident_bytes").value == s["resident_bytes"]

    def test_summary_reports_cache_gauges(self):
        reqs = make_workload(40, rate_per_s=10.0, seed=3, dup_fraction=0.5)
        eng = ServingEngine(fleet="gpus", cache_capacity=8,
                            queue_capacity=1000)
        s = eng.run(reqs).summary()
        assert "cache_evictions" in s and "cache_resident_bytes" in s
        assert s["cache_resident_bytes"] == eng.cache.stats()["resident_bytes"]


# ---------------------------------------------------------------------------
class TestMonitoringFastPath:
    def test_warm_monitoring_skips_enhance_and_segment(self):
        reqs = make_workload(60, rate_per_s=20.0, seed=3, dup_fraction=0.0,
                             monitor_fraction=0.4)
        eng = ServingEngine(mode="dag", fleet="mixed", queue_capacity=1000,
                            artifact_cache_mb=16384.0)
        eng.run(reqs)  # cold pass populates the artifact cache
        s = eng.run(reqs).summary()  # warm replay
        # The proof by stage-event counts: nothing but classify runs.
        assert set(s["stage_completions"]) == {"classify"}
        assert s["stages_skipped"] > 0
        assert s["artifact_entries"] > 0

    def test_monitoring_bypasses_the_result_cache(self):
        reqs = make_workload(60, rate_per_s=20.0, seed=3,
                             monitor_fraction=0.4)
        eng = ServingEngine(mode="dag", fleet="mixed", queue_capacity=1000)
        rep = eng.run(reqs)
        monitoring = {r.request.request_id for r in rep.completed
                      if r.request.kind == "monitoring"}
        assert monitoring
        for r in rep.completed:
            if r.request.request_id in monitoring:
                assert not r.from_cache


# ---------------------------------------------------------------------------
class TestRouteAround:
    RES = dict(faults=FaultConfig(seed=11, transient_rate=0.25,
                                  straggler_rate=0.1),
               retry=None)  # first failure exhausts failover

    def test_skippable_stage_failure_degrades_instead_of_shedding(self):
        reqs = make_workload(80, rate_per_s=12.0, seed=7, dup_fraction=0.2,
                             monitor_fraction=0.3)
        on = ServingEngine(mode="dag", fleet="mixed", queue_capacity=1000,
                           resilience=ResilienceConfig(**self.RES)).run(reqs)
        off = ServingEngine(
            mode="dag", fleet="mixed", queue_capacity=1000,
            resilience=ResilienceConfig(route_around_stage=False,
                                        **self.RES)).run(reqs)
        s_on, s_off = on.summary(), off.summary()
        assert s_on["stage_degraded_requests"] > 0
        assert s_off["stage_degraded_requests"] == 0
        assert s_on["shed_fault"] < s_off["shed_fault"]
        # Routed-around requests complete through the Fig. 13 arm.
        assert s_on["degraded_completed"] > 0

    def test_dag_chaos_trace_round_trip_is_bit_identical(self, tmp_path):
        """Satellite 4: a DAG chaos run (stage events, model swaps,
        per-stage degradation) replays bit-identically from JSONL."""
        reqs = make_workload(80, rate_per_s=12.0, seed=7, dup_fraction=0.2,
                             monitor_fraction=0.3)
        rep = ServingEngine(mode="dag", fleet="mixed", queue_capacity=1000,
                            resilience=ResilienceConfig(**self.RES)).run(reqs)
        live = summarize(rep)
        assert live["stage_degraded_requests"] > 0  # chaos actually bit
        assert live["model_swaps"] > 0
        path = str(tmp_path / "dag_chaos.jsonl")
        export_jsonl(path, rep.events)
        replay = summarize_trace(load_jsonl(path))
        for key in ("requests", "completed", "shed_queue_full",
                    "shed_timeout", "shed_fault", "slo_violations",
                    "makespan_s", "throughput_rps", "latency_p50_s",
                    "latency_p95_s", "latency_p99_s", "latency_mean_s",
                    "latency_max_s", "cache_hits", "retries",
                    "degraded_completed",
                    # the DAG block, recounted from stage events alone
                    "model_swaps", "model_evictions", "stages_skipped",
                    "artifact_entries", "stage_degraded_requests",
                    "stage_completions"):
            assert replay[key] == live[key], key


# ---------------------------------------------------------------------------
class TestDagBenchmark:
    @pytest.fixture(scope="class")
    def payload(self):
        # parity=False: functional parity is covered (with a real
        # framework) by TestDagParity below; the arms alone are fast.
        return run_dag_bench(quick=True, parity=False)

    def test_stage_pipelined_beats_monolithic_on_monitoring(self, payload):
        h = payload["headline"]
        assert h["dag_wins_monitoring"]
        assert h["throughput_monitoring_cold"]["speedup"] > 1.0

    def test_warm_replay_skips_enhance_and_segment(self, payload):
        assert payload["headline"]["warm_skips_enhance_segment"]
        warm = payload["arms"]["dag_monitoring_warm"]
        assert set(warm["stage_completions"]) == {"classify"}

    def test_diagnosis_overhead_is_reported_not_hidden(self, payload):
        # The DAG arm honestly pays swap/transfer costs on fresh
        # diagnosis traffic; the payload must not pretend otherwise.
        assert payload["headline"]["dag_overhead_diagnosis"] < 1.0

    def test_payload_shape(self, payload):
        assert payload["bench"] == "serving_dag"
        assert set(payload["arms"]) == {
            "monolithic_diagnosis", "dag_diagnosis",
            "monolithic_monitoring_cold", "dag_monitoring_cold",
            "monolithic_monitoring_warm", "dag_monitoring_warm"}
        assert payload["parity"]["skipped"] and payload["parity_ok"]


# ---------------------------------------------------------------------------
class TestDagParity:
    @pytest.fixture(scope="class")
    def tiny_framework(self):
        from repro.models import DDnet, DenseNet3D
        from repro.pipeline import ClassificationAI, ComputeCovid19Plus, EnhancementAI

        return ComputeCovid19Plus(
            enhancement=EnhancementAI(
                model=DDnet(base_channels=4, growth=4, num_blocks=2,
                            layers_per_block=2, dense_kernel=3, deconv_kernel=3,
                            rng=np.random.default_rng(0)),
                msssim_levels=1, msssim_window=5),
            classification=ClassificationAI(
                model=DenseNet3D(block_layers=(1, 1, 1, 1), growth=4,
                                 init_features=4, rng=np.random.default_rng(0))),
        )

    def test_dag_mode_is_functionally_identical(self, tiny_framework):
        """Acceptance: DAG serving returns the same diagnoses as the
        monolithic pipeline for every request (same shared framework;
        probabilities may differ only by cross-batch float
        reassociation inside diagnose_batch)."""
        reqs = make_workload(12, rate_per_s=6.0, seed=2, dup_fraction=0.3,
                             size=16, slices=16)
        results = {}
        for mode in ("monolithic", "dag"):
            eng = ServingEngine(mode=mode, fleet="mixed",
                                queue_capacity=1000, verify_batches=10 ** 6,
                                framework=tiny_framework)
            rep = eng.run(reqs)
            results[mode] = {r.request.request_id: r.result
                             for r in rep.completed}
        assert set(results["monolithic"]) == set(results["dag"])
        for rid, mono in results["monolithic"].items():
            dag = results["dag"][rid]
            assert mono is not None and dag is not None
            assert mono.prediction == dag.prediction
            assert dag.probability == pytest.approx(mono.probability,
                                                    abs=1e-9)
