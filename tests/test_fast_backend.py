"""Tests for the ``fast`` backend: FFT conv, tiling, caches, fused ops.

The backend-wide parity grid lives in ``test_backend.py``; this module
covers the fast backend's *mechanisms* — crossover selection, the
filter-transform FFT cache and its invalidation hooks (including the
dtype/backend composition edge cases), the fused decoder pair on DDnet,
and the batched multi-scan functional wrapper.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.models.ddnet import DDnet
from repro.backend.fast import (
    FALLBACK_OPS,
    FFT_CROSSOVER_ELEMS,
    clear_fft_cache,
    fft_cache_size,
    fft_eligible,
    next_fast_len,
)
from repro.backend.precision import allclose_ulp, bit_identical
from repro.backend.registry import (
    clear_kernel_caches,
    dispatch,
    known_backends,
    use_backend,
)
from repro.tensor import Tensor, no_grad
from repro.tensor import functional as F


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _clean_fft_cache():
    clear_fft_cache()
    yield
    clear_fft_cache()


class TestCrossover:
    def test_next_fast_len_is_5_smooth_and_minimal(self):
        for n in (1, 6, 7, 17, 31, 97, 101, 480, 509):
            m = next_fast_len(n)
            assert m >= n
            q = m
            for p in (2, 3, 5):
                while q % p == 0:
                    q //= p
            assert q == 1, (n, m)
        assert next_fast_len(16) == 16
        assert next_fast_len(17) == 18

    def test_fft_eligibility_crossover(self):
        # 5×5 (the DDnet hot kernel) is exactly at the crossover.
        assert FFT_CROSSOVER_ELEMS == 25
        assert fft_eligible((5, 5), (1, 1))
        assert fft_eligible((3, 3, 3), (1, 1, 1))
        assert not fft_eligible((3, 3), (1, 1))      # below crossover
        assert not fft_eligible((1, 1), (1, 1))
        assert not fft_eligible((5, 5), (2, 2))      # strided: gather path

    def test_strided_and_small_kernels_use_tiled_path(self, rng):
        # Sub-crossover convs must not populate the FFT cache.
        x = rng.normal(size=(1, 2, 8, 8))
        w3 = rng.normal(size=(2, 2, 3, 3))
        with no_grad():
            dispatch("conv", x, w3, None, 1, 1, want_cols=False,
                     backend="fast")
        assert fft_cache_size() == 0
        w5 = rng.normal(size=(2, 2, 5, 5))
        with no_grad():
            dispatch("conv", x, w5, None, 1, 2, want_cols=False,
                     backend="fast")
        assert fft_cache_size() == 1


class TestFFTCache:
    def test_cache_hit_and_explicit_clear(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        w = rng.normal(size=(2, 2, 5, 5))
        with no_grad():
            dispatch("conv", x, w, None, 1, 2, want_cols=False, backend="fast")
            assert fft_cache_size() == 1
            dispatch("conv", x, w, None, 1, 2, want_cols=False, backend="fast")
            assert fft_cache_size() == 1  # hit, not a second entry
        clear_kernel_caches()
        assert fft_cache_size() == 0

    def test_grad_mode_bypasses_cache(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        w = rng.normal(size=(2, 2, 5, 5))
        dispatch("conv", x, w, None, 1, 2, want_cols=False, backend="fast")
        assert fft_cache_size() == 0

    def test_load_state_dict_after_to_dtype_invalidates(self, rng):
        """The satellite-4 composition edge case: ``to_dtype(float16)``
        then ``load_state_dict`` — each step must drop the filter
        transforms, and the final forward must run at float16."""
        layer = nn.Conv2d(2, 3, 5, padding=2, rng=np.random.default_rng(1))
        layer.to_backend("fast")
        x64 = Tensor(rng.normal(size=(1, 2, 8, 8)))
        with no_grad():
            layer(x64)
        assert fft_cache_size() == 1
        layer.to_dtype(np.float16)
        assert fft_cache_size() == 0
        x16 = Tensor(rng.normal(size=(1, 2, 8, 8)), dtype=np.float16)
        with no_grad():
            out = layer(x16)
            assert out.data.dtype == np.float16
            assert fft_cache_size() == 1
        layer.load_state_dict(layer.state_dict())
        assert fft_cache_size() == 0
        with no_grad():
            assert layer(x16).data.dtype == np.float16


class TestFusedDecoder:
    def _model(self):
        return DDnet(base_channels=4, growth=4, num_blocks=2,
                     layers_per_block=2, global_shortcuts=False,
                     rng=np.random.default_rng(3))

    def _unfused_forward(self, m, x):
        m._check_input(x)
        h = m.stem(x)
        for block, transition, pool in zip(m.blocks, m.transitions, m.pools):
            h = pool(h)
            h = block(h)
            h = transition(h)
        for stage in range(m.num_blocks):
            h = m.unpools[stage](h)
            h = m.deconvs_a[stage](h)
            if stage < m.num_blocks - 1:
                h = m.deconvs_b[stage](h)
        out = m.head(h)
        return out + x if m.residual else out

    def test_fused_path_bit_identical_on_reference(self, rng):
        m = self._model()
        x = Tensor(rng.normal(size=(1, 1, 16, 16)))
        with no_grad():
            fused = m(x).data
            unfused = self._unfused_forward(m, x).data
        assert bit_identical(fused, unfused)

    def test_fused_path_ulp_on_fast(self, rng):
        m = self._model()
        x = Tensor(rng.normal(size=(1, 1, 16, 16)))
        with no_grad():
            ref = m(x).data
            m.to_backend("fast")
            fast = m(x).data
        assert allclose_ulp(ref, fast)

    def test_grad_mode_composes_autograd_ops(self, rng):
        m = self._model()
        x = Tensor(rng.normal(size=(1, 1, 16, 16)))
        y = m(x)
        y.sum().backward()
        grads = [p.grad for p in m.parameters() if p.requires_grad]
        assert grads and any(np.any(g != 0) for g in grads if g is not None)

    def test_functional_fused_matches_composition(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 6, 6)))
        w = Tensor(rng.normal(size=(3, 4, 5, 5)))
        b = Tensor(rng.normal(size=4))
        with no_grad():
            up = F.upsample_bilinear(x, 2)
            expected = F.conv_transpose_nd(up, w, bias=b, stride=1, padding=2)
            fused = F.fused_unpool_deconv(x, w, bias=b, scale=2, stride=1,
                                          padding=2)
        assert bit_identical(expected.data, fused.data)


class TestConvBatch:
    def test_matches_per_scan_convs(self, rng):
        scans = [rng.normal(size=(3, 6, 6)) for _ in range(4)]
        w = Tensor(rng.normal(size=(4, 3, 5, 5)))
        b = Tensor(rng.normal(size=4))
        with no_grad():
            batched = F.conv_batch(scans, w, bias=b, stride=1, padding=2,
                                   backend="fast")
            singles = [
                F.conv_nd(Tensor(s[None]), w, bias=b, stride=1, padding=2).data[0]
                for s in scans
            ]
        assert batched.data.shape == (4, 4, 6, 6)
        assert allclose_ulp(np.stack(singles), batched.data)

    def test_inference_only(self, rng):
        scans = [rng.normal(size=(2, 4, 4))]
        w = Tensor(rng.normal(size=(2, 2, 3, 3)))
        with pytest.raises(RuntimeError, match="inference-only"):
            F.conv_batch(scans, w)

    def test_amortizes_one_filter_transform(self, rng):
        scans = [rng.normal(size=(2, 8, 8)) for _ in range(4)]
        w = rng.normal(size=(2, 2, 5, 5))
        with no_grad():
            dispatch("conv_batch", scans, w, None, 1, 2, None, backend="fast")
        assert fft_cache_size() == 1


class TestFallbacks:
    def test_fallback_fast_entries_bit_match_their_target(self, rng):
        x = rng.normal(size=(1, 3, 6, 6))
        args = {
            "maxpool": (x, 2, 2, 0),
            "avgpool": (x, 2, 2, 0),
            "unpool": (x, 2),
            "leaky_relu": (x, 0.01),
            "relu": (x,),
        }
        for op, call_args in args.items():
            target = FALLBACK_OPS[op]
            via_target = dispatch(op, *call_args, backend=target)
            via_fast = dispatch(op, *call_args, backend="fast")
            if isinstance(via_target, tuple):  # pooling kernels return extras
                via_target, via_fast = via_target[0], via_fast[0]
            assert bit_identical(via_target, via_fast), op

    def test_every_op_covered(self):
        from repro.backend.registry import known_ops

        for op in known_ops():
            assert "fast" in known_backends(op), op


class TestDtypePreservation:
    @pytest.mark.parametrize("dtype", [np.float32, np.float16])
    def test_fast_conv_keeps_reduced_dtype(self, rng, dtype):
        x = rng.normal(size=(1, 2, 8, 8)).astype(dtype)
        w = rng.normal(size=(2, 2, 5, 5)).astype(dtype)
        with no_grad(), use_backend("fast"):
            out, _, _ = dispatch("conv", x, w, None, 1, 2, want_cols=False)
            assert out.dtype == dtype
            deconv = dispatch("deconv", out, w, x.shape, (1, 1), (2, 2))
            assert deconv.dtype == dtype

    def test_unpool_keeps_reduced_dtype(self, rng):
        x = rng.normal(size=(1, 2, 4, 4)).astype(np.float16)
        out = dispatch("unpool", x, 2, backend="fast")
        assert out.dtype == np.float16
