"""Shared test fixtures and hypothesis configuration."""

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep property-based tests fast on the single-core CI budget.
settings.register_profile(
    "fast",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("fast")


@pytest.fixture
def rng():
    """Deterministic per-test random generator."""
    return np.random.default_rng(1234)
