"""Tests for ``repro.resilience``: faults, health, failover, degradation.

The headline chaos test pins the ISSUE-2 acceptance criteria: a
deterministic run in which 2 of 6 devices crash mid-epidemic-wave must
complete strictly more requests with failover than without, strand zero
batches on dead devices, and tag/count degraded-mode results.
"""

import math

import numpy as np
import pytest

from repro.hetero import DEVICES, NVIDIA_V100
from repro.hetero.runtime import InferenceEngine
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    DegradationController,
    DegradeConfig,
    FailoverManager,
    FaultConfig,
    FaultInjector,
    FleetHealth,
    HealthConfig,
    KernelFault,
    ResilienceConfig,
    RetryPolicy,
    kernel_fault_hook,
)
from repro.serve import (
    Batch,
    ServingEngine,
    ShedReason,
    fleet_from_spec,
    make_workload,
)

MIXED = fleet_from_spec("mixed")
ALL = fleet_from_spec("all")


def req(i=0, t=0.0, seed=0, **kw):
    from repro.serve import ScanRequest

    return ScanRequest(request_id=i, arrival_s=t, seed=seed, **kw)


# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_outcomes_are_deterministic(self):
        cfg = FaultConfig(seed=5, transient_rate=0.3, straggler_rate=0.3)
        a = FaultInjector(cfg, MIXED)
        b = FaultInjector(cfg, MIXED)
        for bid in range(50):
            oa = a.outcome(MIXED[0], bid, 0.0, 1.0)
            ob = b.outcome(MIXED[0], bid, 0.0, 1.0)
            assert oa == ob

    def test_retry_attempt_gets_fresh_luck(self):
        cfg = FaultConfig(seed=1, transient_rate=0.5)
        inj = FaultInjector(cfg, MIXED)
        kinds = {inj.outcome(MIXED[0], 7, 0.0, 1.0, attempt=k).kind
                 for k in range(20)}
        assert "transient" in kinds and "ok" in kinds

    def test_explicit_crash_schedule(self):
        cfg = FaultConfig(seed=0, crash_times={MIXED[0].name: 5.0})
        inj = FaultInjector(cfg, MIXED)
        assert inj.crash_time(MIXED[0].name) == 5.0
        assert inj.alive(MIXED[0].name, 4.9)
        assert not inj.alive(MIXED[0].name, 5.0)
        # Other devices never crash without an mttf.
        assert all(math.isinf(inj.crash_time(d.name)) for d in MIXED[1:])

    def test_dispatch_onto_corpse_fails_fast(self):
        cfg = FaultConfig(seed=0, crash_times={MIXED[0].name: 1.0})
        inj = FaultInjector(cfg, MIXED)
        out = inj.outcome(MIXED[0], 0, 2.0, 10.0)
        assert out.kind == "dead" and out.fails
        assert out.fail_after_s == cfg.detection_s

    def test_crash_mid_service(self):
        cfg = FaultConfig(seed=0, crash_times={MIXED[0].name: 5.0},
                          transient_rate=0.0, straggler_rate=0.0)
        inj = FaultInjector(cfg, MIXED)
        out = inj.outcome(MIXED[0], 0, 4.0, 10.0)
        assert out.kind == "crash" and out.fails
        assert out.fail_after_s == pytest.approx(1.0)

    def test_mttf_draws_crash_times(self):
        cfg = FaultConfig(seed=2, mttf_s=100.0)
        inj = FaultInjector(cfg, ALL)
        times = [inj.crash_time(d.name) for d in ALL]
        assert all(math.isfinite(t) and t > 0 for t in times)
        assert len(set(times)) == len(times)  # independent draws

    def test_max_crashes_caps_failing_devices(self):
        cfg = FaultConfig(seed=2, mttf_s=100.0, max_crashes=2)
        inj = FaultInjector(cfg, ALL)
        finite = [t for t in inj.crash_times.values() if math.isfinite(t)]
        assert len(finite) == 2

    def test_straggler_slows_reconfig_stalls(self):
        fpga = DEVICES["Intel Arria 10 GX 1150 FPGA"]
        cfg = FaultConfig(seed=0, transient_rate=0.0, straggler_rate=1.0,
                          straggler_factor=4.0)
        out = FaultInjector(cfg, [fpga]).outcome(fpga, 0, 0.0, 2.0)
        assert out.kind == "straggler" and out.service_s == pytest.approx(8.0)
        cfg = FaultConfig(seed=0, transient_rate=0.0, straggler_rate=0.0,
                          reconfig_rate=1.0, reconfig_stall_s=0.5)
        out = FaultInjector(cfg, [fpga]).outcome(fpga, 0, 0.0, 2.0)
        assert out.kind == "reconfig" and out.service_s == pytest.approx(2.5)
        # Reconfig stalls never hit non-FPGA devices.
        out = FaultInjector(cfg, MIXED).outcome(NVIDIA_V100, 0, 0.0, 2.0)
        assert out.kind == "ok"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(mttf_s=0.0)
        with pytest.raises(ValueError):
            FaultConfig(straggler_factor=0.5)


# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def cfg(self, **kw):
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("cooldown_s", 5.0)
        return HealthConfig(**kw)

    def test_opens_after_k_consecutive_failures(self):
        b = CircuitBreaker("dev", self.cfg())
        for t in (1.0, 2.0):
            b.record_failure(t)
            assert b.state is BreakerState.CLOSED
        b.record_failure(3.0)
        assert b.state is BreakerState.OPEN
        assert not b.allows(3.1)

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker("dev", self.cfg())
        b.record_failure(1.0)
        b.record_failure(2.0)
        b.record_success(3.0)
        b.record_failure(4.0)
        b.record_failure(5.0)
        assert b.state is BreakerState.CLOSED  # never hit 3 consecutive

    def test_half_open_probe_then_close(self):
        b = CircuitBreaker("dev", self.cfg())
        for t in (1.0, 2.0, 3.0):
            b.record_failure(t)
        assert not b.allows(4.0)           # still cooling down
        assert b.allows(8.0)               # cooldown elapsed -> half-open
        assert b.state is BreakerState.HALF_OPEN
        b.begin_probe()
        assert not b.allows(8.1)           # one probe at a time
        b.record_success(9.0)
        assert b.state is BreakerState.CLOSED
        assert b.allows(9.1)

    def test_failed_probe_reopens_with_longer_cooldown(self):
        b = CircuitBreaker("dev", self.cfg(cooldown_factor=2.0))
        for t in (1.0, 2.0, 3.0):
            b.record_failure(t)
        assert b.allows(8.0)
        b.begin_probe()
        b.record_failure(9.0)
        assert b.state is BreakerState.OPEN
        assert b.cooldown_s == pytest.approx(10.0)
        assert not b.allows(9.0 + 9.99)
        assert b.allows(9.0 + 10.01)

    def test_dead_is_terminal(self):
        b = CircuitBreaker("dev", self.cfg())
        b.mark_dead(1.0)
        assert b.state is BreakerState.DEAD
        b.record_success(2.0)
        assert b.state is BreakerState.DEAD
        assert not b.allows(100.0)

    def test_fleet_health_heartbeat_marks_dead(self):
        fh = FleetHealth(["a", "b"], self.cfg())
        newly = fh.on_heartbeat(1.0, alive=lambda n: n != "b")
        assert newly == {"b"}
        assert fh.dead() == {"b"}
        assert fh.unavailable(1.0) == {"b"}
        assert fh.any_alive()
        fh.on_heartbeat(2.0, alive=lambda n: False)
        assert not fh.any_alive()

    def test_health_config_validation(self):
        with pytest.raises(ValueError):
            HealthConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            HealthConfig(heartbeat_s=0.0)


# ---------------------------------------------------------------------------
class TestFailover:
    def batch(self, n=2):
        return Batch(0, "enhance", [req(i) for i in range(n)], 0.0)

    def test_backoff_is_exponential_and_capped(self):
        p = RetryPolicy(backoff_base_s=0.5, backoff_factor=2.0, backoff_max_s=3.0)
        assert p.backoff_s(1) == 0.5
        assert p.backoff_s(2) == 1.0
        assert p.backoff_s(3) == 2.0
        assert p.backoff_s(4) == 3.0  # capped
        with pytest.raises(ValueError):
            p.backoff_s(0)

    def test_failure_excludes_device_and_schedules_retry(self):
        fm = FailoverManager(RetryPolicy(max_retries=2, backoff_base_s=1.0))
        b = self.batch()
        retry_at = fm.on_failure(b, "gpu0", 10.0, healthy={"gpu0", "gpu1"})
        assert retry_at == pytest.approx(11.0)
        assert b.attempt == 1 and b.excluded_devices == {"gpu0"}
        assert fm.retries == 1

    def test_bounded_retries_then_give_up(self):
        fm = FailoverManager(RetryPolicy(max_retries=1))
        b = self.batch()
        assert fm.on_failure(b, "gpu0", 0.0, healthy={"gpu1"}) is not None
        assert fm.on_failure(b, "gpu1", 1.0, healthy={"gpu1"}) is None
        assert fm.gave_up == 1

    def test_no_healthy_devices_gives_up_immediately(self):
        fm = FailoverManager(RetryPolicy(max_retries=5))
        assert fm.on_failure(self.batch(), "gpu0", 0.0, healthy=set()) is None

    def test_exclusions_forgiven_when_covering_healthy_fleet(self):
        fm = FailoverManager(RetryPolicy(max_retries=5))
        b = self.batch()
        fm.on_failure(b, "gpu0", 0.0, healthy={"gpu0", "gpu1"})
        retry_at = fm.on_failure(b, "gpu1", 1.0, healthy={"gpu0", "gpu1"})
        assert retry_at is not None
        assert b.excluded_devices == set()  # forgiven, not stranded

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


# ---------------------------------------------------------------------------
class TestDegradationController:
    def cfg(self, **kw):
        kw.setdefault("queue_high", 10)
        kw.setdefault("queue_low", 2)
        kw.setdefault("p95_high_s", 5.0)
        kw.setdefault("min_dwell_s", 1.0)
        return DegradeConfig(**kw)

    def test_enters_on_queue_pressure_with_hysteresis(self):
        c = DegradationController(self.cfg())
        assert not c.evaluate(0.0, 5)
        assert c.evaluate(1.0, 12)          # above high watermark
        assert c.evaluate(2.0, 5)           # between watermarks: stays degraded
        assert not c.evaluate(3.5, 1)       # below low watermark: recovers
        assert [m for _, m in c.switches] == ["degraded", "full"]

    def test_enters_on_latency_pressure(self):
        c = DegradationController(self.cfg())
        for _ in range(10):
            c.record_latency(9.0)
        assert c.evaluate(1.0, 0)
        assert c.p95_s() == pytest.approx(9.0)

    def test_min_dwell_prevents_flapping(self):
        c = DegradationController(self.cfg(min_dwell_s=10.0))
        assert c.evaluate(0.0, 12)
        assert c.evaluate(1.0, 0)           # wants to recover, dwell blocks
        assert not c.evaluate(11.0, 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DegradeConfig(queue_high=4, queue_low=8)
        with pytest.raises(ValueError):
            DegradeConfig(p95_high_s=0.0)


# ---------------------------------------------------------------------------
class TestKernelFaultHook:
    def _tiny_engine(self, hook):
        from repro.models import DDnet

        model = DDnet(base_channels=4, growth=4, num_blocks=2,
                      layers_per_block=2, dense_kernel=3, deconv_kernel=3,
                      rng=np.random.default_rng(0))
        return InferenceEngine(model, NVIDIA_V100, fault_hook=hook)

    def test_hook_slows_modelled_time_only(self):
        x = np.random.default_rng(1).normal(size=(1, 1, 16, 16))
        clean_engine = self._tiny_engine(None)
        out_clean, trace_clean = clean_engine.run(x)
        slow_engine = self._tiny_engine(
            kernel_fault_hook(seed=0, slow_rate=1.0, slow_factor=3.0))
        out_slow, trace_slow = slow_engine.run(x)
        np.testing.assert_allclose(out_slow, out_clean)  # results untouched
        assert trace_slow.modelled_time_s == pytest.approx(
            3.0 * trace_clean.modelled_time_s)

    def test_hook_raises_deterministically(self):
        x = np.random.default_rng(1).normal(size=(1, 1, 16, 16))
        with pytest.raises(KernelFault):
            self._tiny_engine(kernel_fault_hook(seed=3, failure_rate=0.05)).run(x)
        # Same seed, fresh hook: the identical launch fails again.
        try:
            self._tiny_engine(kernel_fault_hook(seed=3, failure_rate=0.05)).run(x)
        except KernelFault as exc:
            first = str(exc)
        try:
            self._tiny_engine(kernel_fault_hook(seed=3, failure_rate=0.05)).run(x)
        except KernelFault as exc:
            assert str(exc) == first

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            kernel_fault_hook(failure_rate=2.0)


# ---------------------------------------------------------------------------
# The ISSUE-2 acceptance scenario: 2 of 6 devices crash mid-epidemic-wave.
# ---------------------------------------------------------------------------
class TestChaosServing:
    SEED = 7

    @pytest.fixture(scope="class")
    def workload(self):
        return make_workload(200, rate_per_s=12.0, pattern="wave",
                             seed=self.SEED, dup_fraction=0.2)

    @pytest.fixture(scope="class")
    def fault_config(self, workload):
        horizon = workload[-1].arrival_s
        # The two fastest GPUs die mid-wave: maximal damage.
        return FaultConfig(seed=3, transient_rate=0.05, straggler_rate=0.05,
                           crash_times={
                               "Nvidia V100 GPU": 0.45 * horizon,
                               "Nvidia P100 GPU": 0.55 * horizon,
                           })

    def _run(self, workload, fault_config, retry, degrade=None):
        resilience = ResilienceConfig(faults=fault_config, retry=retry,
                                      degrade=degrade)
        engine = ServingEngine(fleet="all", policy="perf-aware",
                               resilience=resilience)
        return engine.run(workload)

    @pytest.fixture(scope="class")
    def with_failover(self, workload, fault_config):
        return self._run(workload, fault_config, RetryPolicy(),
                         DegradeConfig())

    @pytest.fixture(scope="class")
    def without_failover(self, workload, fault_config):
        return self._run(workload, fault_config, None, DegradeConfig())

    def test_two_devices_died_midwave(self, with_failover):
        crashed = [w for w in with_failover.workers if not w.alive]
        assert len(crashed) == 2
        assert {w.spec.name for w in crashed} == {
            "Nvidia V100 GPU", "Nvidia P100 GPU"}
        states = with_failover.health_states
        assert states["Nvidia V100 GPU"] == "dead"
        assert states["Nvidia P100 GPU"] == "dead"
        avail = with_failover.availability
        assert 0.0 < avail["Nvidia V100 GPU"] < 1.0
        assert all(avail[w.spec.name] == 1.0 for w in with_failover.workers
                   if w.alive)

    def test_failover_completes_strictly_more(self, with_failover,
                                              without_failover):
        assert len(with_failover.completed) > len(without_failover.completed)
        # The no-failover arm sheds every faulted batch outright.
        assert without_failover.queue_stats["faulted"] > 0
        assert without_failover.retries == 0
        assert with_failover.retries > 0

    def test_zero_batches_stranded_on_dead_devices(self, with_failover):
        # Every dispatched batch resolved: no in-flight work anywhere,
        # dead devices included, and the admission ledger balances to 0.
        assert all(w.in_flight == 0 for w in with_failover.workers)
        s = with_failover.queue_stats
        assert s["admitted"] == s["departed"] + s["timed_out"] + s["faulted"]
        # Trace-level check: every dispatch has a matching complete/fail.
        open_batches = {}
        for e in with_failover.trace:
            if e.kind == "dispatch":
                open_batches[(e.detail["device"], e.detail["batch"])] = e
            elif e.kind in ("complete", "fault"):
                open_batches.pop((e.detail["device"], e.detail["batch"]), None)
        assert not open_batches
        # And nothing was dispatched to a device after its detected death.
        death = {w.spec.name: w.crashed_at for w in with_failover.workers
                 if not w.alive}
        for e in with_failover.trace:
            if e.kind == "dispatch" and e.detail["device"] in death:
                assert e.t <= death[e.detail["device"]] + 1e-9 \
                    or e.detail.get("fault") in ("dead", "crash")

    def test_every_offered_request_accounted(self, with_failover, workload):
        cache_hits = sum(1 for r in with_failover.completed if r.from_cache)
        assert (len(with_failover.completed) + len(with_failover.shed)
                == len(workload))
        assert with_failover.queue_stats["offered"] == len(workload) - cache_hits
        for r in with_failover.shed:
            assert r.shed_reason in (ShedReason.QUEUE_FULL, ShedReason.TIMEOUT,
                                     ShedReason.FAULT)

    def test_degraded_results_tagged_and_counted(self, with_failover):
        summary = with_failover.summary()
        degraded = [r for r in with_failover.completed if r.degraded]
        assert degraded, "fleet shrink under wave load must trigger degradation"
        assert summary["degraded_completed"] == len(degraded)
        assert summary["degrade_switches"] == len(with_failover.degrade_log)
        assert summary["degrade_switches"] >= 1
        assert with_failover.degrade_log[0][1] == "degraded"

    def test_chaos_run_is_deterministic(self, workload, fault_config):
        a = self._run(workload, fault_config, RetryPolicy(), DegradeConfig())
        b = self._run(workload, fault_config, RetryPolicy(), DegradeConfig())
        assert a.summary() == b.summary()

    def test_fault_shed_carries_distinct_reason(self, without_failover):
        fault_shed = [r for r in without_failover.shed
                      if r.shed_reason is ShedReason.FAULT]
        assert len(fault_shed) == without_failover.queue_stats["faulted"]
        assert fault_shed, "no-failover arm must shed faulted batches"

    def test_summary_surfaces_resilience_counters(self, with_failover):
        s = with_failover.summary()
        for key in ("shed_fault", "fault_events", "retries", "retries_gave_up",
                    "device_availability", "degraded_completed",
                    "breaker_states", "device_failures"):
            assert key in s
        assert s["fault_events"], "chaos run must record fault events"


# ---------------------------------------------------------------------------
class TestResilientEngineEdges:
    def test_whole_fleet_dies_everything_resolves(self):
        reqs = make_workload(30, rate_per_s=10.0, seed=1, dup_fraction=0.0)
        cfg = FaultConfig(seed=0, crash_times={
            "Nvidia V100 GPU": 0.5, "Nvidia T4 GPU": 0.6})
        res = ResilienceConfig(faults=cfg, retry=RetryPolicy(max_retries=2))
        rep = ServingEngine(fleet="V100,T4", policy="perf-aware",
                            resilience=res).run(reqs)
        assert len(rep.completed) + len(rep.shed) == len(reqs)
        assert all(w.in_flight == 0 for w in rep.workers)
        assert not rep.health_states or all(
            v == "dead" for v in rep.health_states.values())

    def test_transients_recovered_without_crashes(self):
        reqs = make_workload(60, rate_per_s=10.0, seed=2, dup_fraction=0.0)
        cfg = FaultConfig(seed=1, transient_rate=0.25, straggler_rate=0.0)
        rep = ServingEngine(fleet="gpus", policy="perf-aware",
                            resilience=ResilienceConfig(faults=cfg)).run(reqs)
        assert rep.fault_stats.get("transient", 0) > 0
        assert rep.retries > 0
        # Failover swallowed every transient: nothing shed for faults.
        assert rep.queue_stats["faulted"] == 0
        assert len(rep.completed) == len(reqs)

    def test_fault_free_resilient_run_matches_plain_run(self):
        reqs = make_workload(40, rate_per_s=10.0, seed=3, dup_fraction=0.3)
        plain = ServingEngine(fleet="mixed", policy="perf-aware").run(reqs)
        armed = ServingEngine(fleet="mixed", policy="perf-aware",
                              resilience=ResilienceConfig()).run(reqs)
        # Heartbeats may pad the makespan (throughput denominator) by up
        # to one tick, but every per-request outcome must be identical.
        for key in ("completed", "latency_p50_s", "latency_p95_s",
                    "latency_p99_s", "cache_hits"):
            assert plain.summary()[key] == armed.summary()[key]
        assert [(r.request.request_id, r.completed_s)
                for r in plain.completed] == \
               [(r.request.request_id, r.completed_s)
                for r in armed.completed]

    def test_degradation_under_pure_overload(self):
        # No faults at all: a slow fleet + hot wave still triggers the
        # no-enhancement arm purely from queue depth.
        reqs = make_workload(80, rate_per_s=40.0, seed=4, dup_fraction=0.0)
        res = ResilienceConfig(degrade=DegradeConfig(queue_high=10, queue_low=2))
        rep = ServingEngine(fleet="mixed", policy="perf-aware",
                            queue_capacity=128, resilience=res).run(reqs)
        degraded = [r for r in rep.completed if r.degraded]
        assert degraded
        assert rep.summary()["degraded_completed"] == len(degraded)
