"""Tests for phantoms, lesions, preparation, datasets, and the registry."""

import numpy as np
import pytest

from repro.data import (
    ChestPhantomConfig,
    ClassificationDataset,
    EnhancementDataset,
    LESION_TYPES,
    add_lesion,
    bimcv,
    chest_slice,
    chest_volume,
    data_source_table,
    detect_circular_boundary,
    filter_min_slices,
    lidc,
    make_classification_volumes,
    make_enhancement_pairs,
    mayo_clinic,
    midrc,
    prepare_scan,
    remove_circular_boundary,
    slice_masks,
)
from repro.data.phantom import HU_AIR, HU_BONE
from repro.data.preparation import add_circular_boundary
from repro.data.registry import DATA_SOURCES


class TestChestSlice:
    def test_hu_ranges(self, rng):
        img, masks = chest_slice(ChestPhantomConfig(size=64), rng, return_masks=True)
        assert img.min() >= -1100.0
        assert img.max() <= HU_BONE + 50
        # Lungs dark, body soft-tissue bright.
        assert img[masks["lungs"]].mean() < -600.0
        body_only = masks["body"] & ~masks["lungs"] & ~masks["spine"] & ~masks["ribs"]
        assert img[body_only].mean() > -200.0

    def test_two_lungs_disjoint(self, rng):
        masks = slice_masks(ChestPhantomConfig(size=64), rng)
        assert not (masks["left_lung"] & masks["right_lung"]).any()
        assert (masks["left_lung"] | masks["right_lung"]).sum() == masks["lungs"].sum()

    def test_lungs_inside_body(self, rng):
        masks = slice_masks(ChestPhantomConfig(size=64), rng)
        assert (masks["lungs"] & ~masks["body"]).sum() == 0

    def test_lung_scale_shrinks(self, rng):
        big = slice_masks(ChestPhantomConfig(size=64), np.random.default_rng(1), lung_scale=1.0)
        small = slice_masks(ChestPhantomConfig(size=64), np.random.default_rng(1), lung_scale=0.5)
        assert small["lungs"].sum() < big["lungs"].sum()

    def test_randomization_varies_patients(self):
        a = chest_slice(ChestPhantomConfig(size=48), np.random.default_rng(1))
        b = chest_slice(ChestPhantomConfig(size=48), np.random.default_rng(2))
        assert not np.allclose(a, b)

    def test_deterministic_given_seed(self):
        a = chest_slice(ChestPhantomConfig(size=48), np.random.default_rng(7))
        b = chest_slice(ChestPhantomConfig(size=48), np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestLesions:
    @pytest.mark.parametrize("kind", sorted(LESION_TYPES))
    def test_lesion_raises_lung_density(self, rng, kind):
        img, masks = chest_slice(ChestPhantomConfig(size=64), rng, return_masks=True)
        out = add_lesion(img, masks["lungs"], kind, rng=rng)
        diff = out - img
        assert diff[masks["lungs"]].sum() > 0          # density increased
        outside = np.abs(diff[~masks["lungs"]])
        assert outside.max() < 1e-9                    # only inside lungs

    def test_unknown_lesion(self, rng):
        img, masks = chest_slice(ChestPhantomConfig(size=64), rng, return_masks=True)
        with pytest.raises(KeyError):
            add_lesion(img, masks["lungs"], "cavitation", rng=rng)

    def test_empty_mask_raises(self, rng):
        img = np.zeros((32, 32))
        with pytest.raises(ValueError):
            add_lesion(img, np.zeros((32, 32), dtype=bool), "ggo", rng=rng)

    def test_ggo_partial_vs_consolidation_dense(self, rng):
        img, masks = chest_slice(ChestPhantomConfig(size=64), np.random.default_rng(3),
                                 return_masks=True)
        ggo = add_lesion(img, masks["lungs"], "ggo", rng=np.random.default_rng(1))
        cons = add_lesion(img, masks["lungs"], "consolidation", rng=np.random.default_rng(1))
        assert ggo[masks["lungs"]].max() < cons[masks["lungs"]].max() + 100


class TestChestVolume:
    def test_shape_and_units(self, rng):
        vol = chest_volume(32, 12, rng=rng)
        assert vol.shape == (12, 32, 32)
        assert vol.min() >= -1100 and vol.max() <= 800

    def test_lung_profile_apex_base(self, rng):
        vol = chest_volume(48, 16, rng=rng)
        lungs_per_slice = (vol < -600).sum(axis=(1, 2))
        mid = lungs_per_slice[7:9].mean()
        assert lungs_per_slice[0] < mid
        assert lungs_per_slice[-1] < mid

    def test_covid_adds_lesions(self):
        healthy = chest_volume(32, 8, covid=False, rng=np.random.default_rng(4))
        covid, mask = chest_volume(32, 8, covid=True, rng=np.random.default_rng(4),
                                   return_lesion_mask=True)
        assert mask.any()
        assert covid[mask].mean() > healthy[mask].mean()

    def test_lesions_span_multiple_slices(self):
        _, mask = chest_volume(32, 16, covid=True, num_lesions=1,
                               rng=np.random.default_rng(8), return_lesion_mask=True)
        assert (mask.any(axis=(1, 2))).sum() >= 2

    def test_config_size_mismatch(self, rng):
        with pytest.raises(ValueError):
            chest_volume(32, 8, config=ChestPhantomConfig(size=64), rng=rng)


class TestPreparation:
    def test_boundary_roundtrip(self, rng):
        img = chest_slice(ChestPhantomConfig(size=64), rng)
        stamped = add_circular_boundary(img, radius_frac=0.45)
        assert detect_circular_boundary(stamped) is not None
        cleaned = remove_circular_boundary(stamped)
        assert cleaned.min() >= HU_AIR
        assert detect_circular_boundary(cleaned) is None

    def test_removal_idempotent(self, rng):
        img = chest_slice(ChestPhantomConfig(size=48), rng)
        once = remove_circular_boundary(img)
        assert np.array_equal(once, remove_circular_boundary(once))

    def test_detect_radius_accuracy(self, rng):
        img = chest_slice(ChestPhantomConfig(size=64), rng)
        stamped = add_circular_boundary(img, radius_frac=0.40)
        r = detect_circular_boundary(stamped)
        assert abs(r - 0.40) < 0.03

    def test_filter_min_slices(self, rng):
        scans = [rng.normal(size=(s, 8, 8)) for s in (100, 128, 200)]
        kept = filter_min_slices(scans, min_slices=128)
        assert len(kept) == 2

    def test_prepare_scan_rejects_short(self, rng):
        assert prepare_scan(rng.normal(size=(10, 8, 8)), min_slices=64) is None

    def test_prepare_scan_cleans(self, rng):
        vol = np.stack([add_circular_boundary(chest_slice(ChestPhantomConfig(size=32), rng))
                        for _ in range(4)])
        out = prepare_scan(vol, min_slices=2)
        assert out.min() >= HU_AIR

    def test_prepare_scan_wrong_ndim(self, rng):
        with pytest.raises(ValueError):
            prepare_scan(rng.normal(size=(8, 8)))


class TestDatasets:
    def test_registry_matches_table1(self):
        assert DATA_SOURCES["mayo"].num_scans == 8
        assert DATA_SOURCES["bimcv"].num_scans == 34
        assert DATA_SOURCES["midrc"].num_scans == 229
        assert DATA_SOURCES["lidc"].num_scans == 1301
        rows = data_source_table()
        assert len(rows) == 4

    def test_source_labels(self):
        assert mayo_clinic(num_scans=2).labels().sum() == 0
        assert bimcv(num_scans=2).labels().sum() == 2
        assert midrc(num_scans=2).covid_positive
        assert not lidc(num_scans=2).covid_positive

    def test_paper_counts_when_none(self):
        assert lidc(num_scans=None).num_scans == 1301

    def test_scan_materialization(self):
        src = bimcv(num_scans=2, size=32, num_slices=8)
        scan = src.scan(0)
        assert scan.shape == (8, 32, 32)
        assert np.array_equal(scan, src.scan(0))  # deterministic
        with pytest.raises(IndexError):
            src.scan(5)

    def test_enhancement_pairs_properties(self, rng):
        lows, fulls = make_enhancement_pairs(3, size=32, blank_scan=300.0, rng=rng)
        assert lows.shape == fulls.shape == (3, 1, 32, 32)
        assert lows.min() >= 0.0 and lows.max() <= 1.0
        # Low dose must actually be noisier than full dose.
        assert np.abs(lows - fulls).mean() > 1e-3

    def test_enhancement_pairs_fast_surrogate(self, rng):
        lows, fulls = make_enhancement_pairs(2, size=32, blank_scan=1e4,
                                             physics=False, rng=rng)
        assert np.abs(lows - fulls).mean() > 1e-4

    def test_enhancement_dataset(self, rng):
        ds = EnhancementDataset(*make_enhancement_pairs(2, size=32, physics=False, rng=rng))
        low, full = ds[0]
        assert low.shape == (1, 32, 32)
        with pytest.raises(ValueError):
            EnhancementDataset(np.zeros((2, 1, 8, 8)), np.zeros((3, 1, 8, 8)))

    def test_classification_volumes_balanced(self, rng):
        vols, labels = make_classification_volumes(3, 2, size=16, num_slices=8, rng=rng)
        assert vols.shape == (5, 1, 8, 16, 16)
        assert labels.sum() == 3

    def test_classification_dataset_normalization(self, rng):
        ds = ClassificationDataset.generate(1, 1, size=16, num_slices=8, rng=rng)
        vol, label = ds[0]
        assert np.abs(vol).max() < 2.0  # HU/1000
        assert label in (0.0, 1.0)

    def test_classification_dataset_transform(self, rng):
        ds = ClassificationDataset.generate(1, 1, size=16, num_slices=8, rng=rng)
        ds.transform = lambda v: v * 0.0
        vol, _ = ds[0]
        assert np.all(vol == 0.0)
