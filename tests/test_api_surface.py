"""Late-added coverage for public API surface not exercised elsewhere."""

import numpy as np
import pytest

from repro.ct.hounsfield import mu_to_hu, normalize_unit
from repro.models import DDnet
from repro.pipeline import (
    ClassificationAI,
    DualDomainEnhancer,
    EnhancementAI,
    SinogramDenoiser,
)
from repro.report import ascii_plot
from repro.tensor import Tensor, no_grad


def tiny_ddnet(seed=0, **kw):
    return DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                 dense_kernel=3, deconv_kernel=3, rng=np.random.default_rng(seed), **kw)


class TestDDnetVariantsBehave:
    def test_no_shortcut_variant_runs_and_differs(self, rng):
        x = Tensor(rng.random((1, 1, 16, 16)))
        with_sc = tiny_ddnet(0, global_shortcuts=True)
        without = tiny_ddnet(0, global_shortcuts=False)
        with no_grad():
            a = with_sc.eval()(x).data
            b = without.eval()(x).data
        assert a.shape == b.shape
        assert not np.allclose(a, b)

    def test_no_shortcut_fewer_parameters(self):
        assert (tiny_ddnet(0, global_shortcuts=False).num_parameters()
                < tiny_ddnet(0, global_shortcuts=True).num_parameters())

    def test_residual_flag_changes_mapping(self, rng):
        x = rng.random((1, 1, 16, 16))
        res = tiny_ddnet(0, residual=True)
        direct = tiny_ddnet(0, residual=False)
        direct.load_state_dict(res.state_dict())
        with no_grad():
            a = res.eval()(Tensor(x)).data
            b = direct.eval()(Tensor(x)).data
        assert np.allclose(a - b, x, atol=1e-10)  # difference is exactly +x


class TestAIToolHistories:
    def test_enhancement_history_property(self, rng):
        from repro.data.datasets import EnhancementDataset

        lows = rng.random((4, 1, 16, 16))
        fulls = np.clip(lows + 0.01, 0, 1)
        ai = EnhancementAI(model=tiny_ddnet(init_std=0.01), lr=1e-3,
                           msssim_levels=1, msssim_window=5)
        assert ai.history is None
        ai.train(EnhancementDataset(lows, fulls), epochs=2, batch_size=2)
        assert ai.history.epochs == 2

    def test_classification_save_load(self, rng, tmp_path):
        from repro.models import DenseNet3D

        a = ClassificationAI(model=DenseNet3D(block_layers=(1, 1, 1, 1), growth=4,
                                              init_features=4,
                                              rng=np.random.default_rng(1)))
        b = ClassificationAI(model=DenseNet3D(block_layers=(1, 1, 1, 1), growth=4,
                                              init_features=4,
                                              rng=np.random.default_rng(2)))
        path = str(tmp_path / "cls.npz")
        a.save(path)
        b.load(path)
        vol = rng.normal(size=(16, 16, 16)) * 100
        assert a.predict_proba(vol) == pytest.approx(b.predict_proba(vol))


class TestDualDomainWithImageStage:
    def test_full_chain_produces_unit_image(self, rng):
        from repro.ct import forward_project, hu_to_mu
        from repro.ct.geometry import ParallelBeamGeometry
        from repro.data.phantom import ChestPhantomConfig, chest_slice

        size = 16
        geo = ParallelBeamGeometry(num_views=24, num_detectors=33)
        img = hu_to_mu(chest_slice(ChestPhantomConfig(size=size),
                                   np.random.default_rng(0)))
        sino = forward_project(img, geo)
        den = SinogramDenoiser(base=2, depth=1, rng=np.random.default_rng(1))
        den.train([sino], [sino], epochs=1)
        enhancer = EnhancementAI(model=tiny_ddnet(init_std=0.01),
                                 msssim_levels=1, msssim_window=5)
        dd = DualDomainEnhancer(den, geo, size, image_enhancer=enhancer)
        out = dd.enhance(sino, lambda m: normalize_unit(mu_to_hu(m)))
        assert out.shape == (size, size)
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestReportEdgeCases:
    def test_ascii_plot_single_point(self):
        out = ascii_plot({"s": [5.0]}, width=10, height=4)
        assert "*" in out

    def test_ascii_plot_constant_series(self):
        out = ascii_plot({"s": [2.0, 2.0, 2.0]}, width=12, height=4)
        assert "*" in out  # zero span handled (no div-by-zero)
