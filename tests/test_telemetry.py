"""The telemetry spine: event bus, metrics registry, spans, DES kernel.

The headline tests pin the PR-3 acceptance criteria: one chaos run in
which kernel launches, shed decisions, failover retries, breaker
transitions, and heartbeats all land on a *single* event bus, and a
``serve --trace-out`` → ``trace summary`` round trip whose latency
percentiles, throughput, and completed/shed counts are bit-identical
to the live summary.
"""

import json
import math

import numpy as np
import pytest

from repro.des import EventLoop
from repro.hetero import NVIDIA_V100
from repro.hetero.counters import OpCounts
from repro.hetero.runtime import ExecutionTrace, InferenceEngine
from repro.models.ddnet import DDnet
from repro.resilience import (
    DegradeConfig,
    FaultConfig,
    ResilienceConfig,
    RetryPolicy,
)
from repro.serve import ServingEngine, make_workload
from repro.serve.metrics import summarize, summarize_trace
from repro.telemetry import EventBus, MetricsRegistry, export_jsonl, load_jsonl, open_span, percentile, spans_from_events


# ---------------------------------------------------------------------------
class TestEventBus:
    def test_emit_appends_in_seq_order(self):
        bus = EventBus()
        bus.emit(1.0, "a", "src", x=1)
        bus.emit(0.5, "b", "other")
        assert [e.seq for e in bus.events] == [0, 1]
        assert bus.events[0].payload == {"x": 1}
        assert len(bus) == 2

    def test_subscribers_are_kind_filtered_and_synchronous(self):
        bus = EventBus()
        seen, everything = [], []
        bus.subscribe(seen.append, kinds=("a",))
        bus.subscribe(everything.append)
        bus.emit(0.0, "a")
        bus.emit(0.0, "b")
        assert [e.kind for e in seen] == ["a"]
        assert [e.kind for e in everything] == ["a", "b"]

    def test_mark_and_since_scope_a_view(self):
        bus = EventBus()
        bus.emit(0.0, "a")
        mark = bus.mark()
        bus.emit(1.0, "b")
        assert [e.kind for e in bus.since(mark)] == ["b"]

    def test_of_kind_and_kinds(self):
        bus = EventBus()
        bus.emit(0.0, "a")
        bus.emit(1.0, "b")
        bus.emit(2.0, "a")
        assert [e.t for e in bus.of_kind("a")] == [0.0, 2.0]
        assert bus.kinds() == {"a", "b"}

    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        bus = EventBus()
        bus.emit(0.1234567890123456, "launch", "hetero",
                 counts=OpCounts(loads=3, stores=1, flops=7),
                 tags={"nested": [1, 2.5, "x"]}, flag=True, nothing=None)
        path = str(tmp_path / "events.jsonl")
        assert export_jsonl(path, bus.events) == 1
        (loaded,) = load_jsonl(path)
        assert loaded.t == bus.events[0].t  # floats exact through repr
        assert loaded.kind == "launch" and loaded.source == "hetero"
        assert loaded.payload["counts"] == {"loads": 3, "stores": 1,
                                            "flops": 7}
        assert loaded.payload["tags"] == {"nested": [1, 2.5, "x"]}
        assert loaded.payload["flag"] is True
        assert loaded.payload["nothing"] is None

    def test_numpy_scalars_export_as_numbers(self, tmp_path):
        bus = EventBus()
        bus.emit(0.0, "k", v=np.float64(0.25), n=np.int64(3))
        path = str(tmp_path / "np.jsonl")
        export_jsonl(path, bus.events)
        (loaded,) = load_jsonl(path)
        assert loaded.payload == {"v": 0.25, "n": 3}


# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_instruments_created_on_first_touch(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        assert reg.counter("c").value == 3
        assert reg.gauge("g").value == 1.5
        snap = reg.as_dict()
        assert snap["c"] == 3 and snap["g"] == 1.5
        assert snap["h"]["count"] == 1 and snap["h"]["p50"] == 2.0

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_histogram_empty_is_nan(self):
        h = MetricsRegistry().histogram("h")
        assert math.isnan(h.mean()) and math.isnan(h.max())
        assert math.isnan(h.percentile(50))

    def test_percentile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)


# ---------------------------------------------------------------------------
class TestSpans:
    def test_span_event_and_reconstruction(self):
        bus = EventBus()
        span = open_span(bus, "inference", source="hetero", t_start=1.0)
        span.close(3.5, device="V100")
        (rebuilt,) = spans_from_events(bus.events)
        assert rebuilt.name == "inference" and rebuilt.source == "hetero"
        assert rebuilt.t_start == 1.0 and rebuilt.t_end == 3.5
        assert rebuilt.duration_s == 2.5
        assert rebuilt.attrs == {"device": "V100"}

    def test_double_close_raises(self):
        span = open_span(EventBus(), "s")
        span.close(1.0)
        with pytest.raises(RuntimeError):
            span.close(2.0)

    def test_close_before_start_raises(self):
        span = open_span(EventBus(), "s", t_start=5.0)
        with pytest.raises(ValueError):
            span.close(4.0)

    def test_spans_survive_jsonl(self, tmp_path):
        bus = EventBus()
        open_span(bus, "epoch", source="trainer", t_start=0.0).close(
            10.0, loss=0.5)
        path = str(tmp_path / "spans.jsonl")
        export_jsonl(path, bus.events)
        (span,) = spans_from_events(load_jsonl(path))
        assert span.duration_s == 10.0 and span.attrs == {"loss": 0.5}


# ---------------------------------------------------------------------------
class TestEventLoop:
    def test_pops_in_time_then_insertion_order(self):
        loop = EventLoop()
        order = []
        loop.on("k", lambda payload, now: order.append((payload, now)))
        loop.schedule(2.0, "k", "late")
        loop.schedule(1.0, "k", "early")
        loop.schedule(1.0, "k", "early2")  # same t: insertion order
        assert loop.run() == 2.0
        assert [p for p, _ in order] == ["early", "early2", "late"]

    def test_clock_never_goes_backwards(self):
        loop = EventLoop()
        seen = []
        loop.on("k", lambda payload, now: seen.append(now))
        loop.schedule(5.0, "k")
        loop.schedule(1.0, "k")
        loop.run()
        assert seen == sorted(seen)

    def test_handlers_can_schedule_more(self):
        loop = EventLoop()

        def chain(payload, now):
            if payload < 3:
                loop.schedule(now + 1.0, "k", payload + 1)

        loop.on("k", chain)
        loop.schedule(0.0, "k", 0)
        assert loop.run() == 3.0
        assert loop.processed == 4

    def test_unregistered_kind_raises(self):
        loop = EventLoop()
        loop.schedule(0.0, "mystery")
        with pytest.raises(KeyError):
            loop.step()

    def test_step_on_empty_returns_none(self):
        assert EventLoop().step() is None


# ---------------------------------------------------------------------------
class TestExecutionTraceView:
    @pytest.fixture(scope="class")
    def net(self):
        return DDnet(base_channels=4, growth=4, num_blocks=2,
                     layers_per_block=2, dense_kernel=3, deconv_kernel=3,
                     rng=np.random.default_rng(0)).eval()

    def test_trace_is_view_over_bus_events(self, net):
        bus = EventBus()
        engine = InferenceEngine(net, NVIDIA_V100, bus=bus)
        _, trace = engine.run(np.random.default_rng(1).random((1, 1, 16, 16)))
        kernel_events = bus.of_kind("kernel_launch")
        assert len(kernel_events) == len(trace.launches) > 0
        assert trace.modelled_time_s == pytest.approx(
            sum(e.payload["time_s"] for e in kernel_events))
        # The run closes an "inference" span on the same bus.
        (span,) = spans_from_events(bus.events)
        assert span.name == "inference"
        assert span.duration_s == pytest.approx(trace.modelled_time_s)
        assert span.attrs["device"] == NVIDIA_V100.name

    def test_two_traces_share_a_bus_without_mixing(self, net):
        bus = EventBus()
        engine = InferenceEngine(net, NVIDIA_V100, bus=bus)
        rng = np.random.default_rng(2)
        _, t1 = engine.run(rng.random((1, 1, 16, 16)))
        _, t2 = engine.run(rng.random((1, 1, 16, 16)))
        assert t1.trace_id != t2.trace_id
        assert len(t1.launches) == len(t2.launches)
        assert len(bus.of_kind("kernel_launch")) == 2 * len(t1.launches)

    def test_trace_round_trips_through_jsonl(self, net, tmp_path):
        _, trace = InferenceEngine(net, NVIDIA_V100).run(
            np.random.default_rng(3).random((1, 1, 16, 16)))
        path = str(tmp_path / "kernels.jsonl")
        export_jsonl(path, trace.bus.events)
        rebuilt = ExecutionTrace.from_events(load_jsonl(path))
        assert rebuilt.launches == trace.launches
        assert rebuilt.counts == trace.counts
        assert rebuilt.modelled_time_s == trace.modelled_time_s
        assert rebuilt.group_counts() == trace.group_counts()

    def test_run_with_queue_rides_the_same_view(self, net):
        """Queue-event profiling and the telemetry view agree: one
        enqueued kernel event per recorded launch, same modelled kind
        sequence, transfers book-ended around the compute."""
        bus = EventBus()
        engine = InferenceEngine(net, NVIDIA_V100, bus=bus)
        x = np.random.default_rng(4).random((1, 1, 16, 16))
        out, trace, queue = engine.run_with_queue(x)
        launches = trace.launches
        kernel_events = [e for e in queue.events if e.kind == "kernel"]
        assert len(kernel_events) == len(launches) > 0
        assert [e.name.split(":", 1)[0] for e in kernel_events] == \
            [launch["kind"] for launch in launches]
        assert queue.events[0].name == "write:input"
        assert queue.events[-1].name == "read:output"
        # The same launches landed on the shared bus.
        assert len(bus.of_kind("kernel_launch")) == len(launches)

    def test_group_counts_aggregates_by_table5_group(self):
        trace = ExecutionTrace()
        trace.record("convolution", "a", OpCounts(flops=10), 0.1)
        trace.record("convolution", "b", OpCounts(flops=5), 0.1)
        trace.record("batchnorm", "c", OpCounts(loads=8, stores=8), 0.1)
        grouped = trace.group_counts()
        assert grouped["convolution"].flops == 15
        assert trace.counts["batchnorm"].loads == 8


# ---------------------------------------------------------------------------
class TestTrainerEvents:
    def test_epoch_and_step_events(self):
        import repro.nn as nn
        from repro.pipeline.training import Trainer

        rng = np.random.default_rng(0)
        model = nn.Sequential(nn.Linear(4, 2))
        ds = nn.TensorDataset(rng.normal(size=(8, 4)),
                              rng.normal(size=(8, 2)))
        bus = EventBus()
        trainer = Trainer(model, nn.Adam(model.parameters(), lr=1e-2),
                          nn.MSELoss(), telemetry=bus)
        trainer.fit(nn.DataLoader(ds, batch_size=4), epochs=2)
        steps = bus.of_kind("step")
        epochs = bus.of_kind("epoch")
        assert len(steps) == 4 and len(epochs) == 2
        assert all(e.source == "pipeline.trainer" for e in steps + epochs)
        # The step-count clock is monotone.
        assert [e.t for e in steps] == [1.0, 2.0, 3.0, 4.0]
        assert epochs[0].payload["epoch"] == 1
        assert epochs[-1].payload["train_loss"] == pytest.approx(
            trainer.history.train_loss[-1])


# ---------------------------------------------------------------------------
# The PR-3 acceptance tests: one spine, bit-identical round trip.
# ---------------------------------------------------------------------------
class TestOneEventSpine:
    @pytest.fixture(scope="class")
    def chaos_report_and_engine(self):
        workload = make_workload(200, rate_per_s=12.0, pattern="wave",
                                 seed=7, dup_fraction=0.2)
        horizon = workload[-1].arrival_s
        resilience = ResilienceConfig(
            faults=FaultConfig(seed=3, transient_rate=0.05,
                               straggler_rate=0.05,
                               crash_times={
                                   "Nvidia V100 GPU": 0.45 * horizon,
                                   "Nvidia P100 GPU": 0.55 * horizon,
                               }),
            retry=RetryPolicy(),
            degrade=DegradeConfig(),
        )
        engine = ServingEngine(fleet="all", policy="perf-aware",
                               resilience=resilience)
        report = engine.run(workload)
        return report, engine

    def test_chaos_run_lands_every_layer_on_one_bus(
            self, chaos_report_and_engine):
        """Kernel launches, sheds, retries, breaker transitions, and
        heartbeats from one chaos run all share a single EventBus."""
        report, engine = chaos_report_and_engine
        bus = engine.telemetry
        # An inference on the *same* bus as the serving run.
        net = DDnet(base_channels=4, growth=4, num_blocks=2,
                    layers_per_block=2, dense_kernel=3, deconv_kernel=3,
                    rng=np.random.default_rng(0)).eval()
        InferenceEngine(net, NVIDIA_V100, bus=bus).run(
            np.random.default_rng(1).random((1, 1, 16, 16)))
        kinds = bus.kinds()
        for expected in ("kernel_launch", "shed", "retry",
                         "breaker_transition", "heartbeat", "dispatch",
                         "complete", "fault", "request_done", "span"):
            assert expected in kinds, expected

    def test_breaker_transitions_ride_the_bus(self, chaos_report_and_engine):
        report, engine = chaos_report_and_engine
        transitions = engine.telemetry.of_kind("breaker_transition")
        assert transitions  # two crashed devices must have transitioned
        dead = {e.payload["device"] for e in transitions
                if e.payload["state"] == "dead"}
        assert {"Nvidia V100 GPU", "Nvidia P100 GPU"} <= dead
        # The bus record equals the breakers' own transition lists.
        for name, breaker in engine.health.breakers.items():
            on_bus = [(e.t, e.payload["state"]) for e in transitions
                      if e.payload["device"] == name]
            assert on_bus == breaker.transitions

    def test_report_trace_is_a_view_of_the_bus(self, chaos_report_and_engine):
        report, engine = chaos_report_and_engine
        assert len(report.trace) == len(report.events)
        for view, event in zip(report.trace, report.events):
            assert view.t == event.t and view.kind == event.kind
            assert view.detail == event.payload

    def test_summary_round_trip_is_bit_identical(
            self, chaos_report_and_engine, tmp_path):
        """export → load → summarize_trace equals the live summary."""
        report, _ = chaos_report_and_engine
        live = summarize(report)
        path = str(tmp_path / "chaos_trace.jsonl")
        export_jsonl(path, report.events)
        replay = summarize_trace(load_jsonl(path))
        for key in ("requests", "completed", "shed_queue_full",
                    "shed_timeout", "shed_fault", "slo_violations",
                    "makespan_s", "throughput_rps", "latency_p50_s",
                    "latency_p95_s", "latency_p99_s", "latency_mean_s",
                    "latency_max_s", "cache_hits", "retries",
                    "degraded_completed"):
            assert replay[key] == live[key], key

    def test_queue_ledger_lives_in_the_registry(self, chaos_report_and_engine):
        report, engine = chaos_report_and_engine
        snap = engine.metrics.as_dict()
        for field, value in report.queue_stats.items():
            assert snap["serve.queue." + field] == value
        # The latency histogram is the summary's source of truth.
        hist = engine.metrics.histogram("serve.latency_s")
        assert hist.count == len(report.completed)

    def test_trace_file_is_valid_compact_jsonl(self, chaos_report_and_engine,
                                               tmp_path):
        report, _ = chaos_report_and_engine
        path = str(tmp_path / "trace.jsonl")
        n = export_jsonl(path, report.events)
        with open(path) as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == n == len(report.events)
        first = json.loads(lines[0])
        assert set(first) == {"seq", "t", "kind", "source", "payload"}
