"""Unit tests for the SEIR model's physical invariants (``repro.epi``).

Complements ``test_epi_report.py`` (scenario shapes, reporting): these
pin the conservation law, seed determinism, and the monotone response
of the wave to R0 and onset that the multi-region fleet scenario
(:func:`repro.epi.regional_wave_scenario`) builds on.
"""

import numpy as np
import pytest

from repro.epi import (
    SEIRParams,
    VariantSEIRModel,
    VariantSpec,
    regional_wave_scenario,
)


class TestConservation:
    def test_cases_equal_ascertained_susceptible_depletion(self):
        # Without vaccination, every person leaving S is a new
        # infection, and confirmed cases are exactly the ascertained
        # fraction of those: sum(cases) == ascertainment * (S0 - S_end).
        m = VariantSEIRModel(
            [VariantSpec("X", r0=4.0, seed_fraction=1e-4)],
            initial_immune_fraction=0.1)
        out = m.run(150)
        total_cases = out["cases_per_million"].sum() / 1e6
        s0 = 1.0 - 0.1
        depletion = s0 - out["S"][-1]
        assert total_cases == pytest.approx(
            m.params.ascertainment * depletion, rel=1e-9)

    def test_conservation_holds_across_variants(self):
        m = VariantSEIRModel([
            VariantSpec("A", r0=3.0, seed_fraction=1e-4),
            VariantSpec("B", r0=5.0, seed_fraction=1e-5, seed_day=30),
        ])
        out = m.run(200)
        total_cases = out["cases_per_million"].sum() / 1e6
        depletion = 1.0 - out["S"][-1]
        assert total_cases == pytest.approx(
            m.params.ascertainment * depletion, rel=1e-9)

    def test_susceptibles_never_negative(self):
        m = regional_wave_scenario(r0=8.0)
        assert np.all(m.run(m.days)["S"] >= 0.0)


class TestDeterminism:
    def test_identical_runs_identical_curves(self):
        a = regional_wave_scenario(r0=5.5, onset_day=10).run(180)
        b = regional_wave_scenario(r0=5.5, onset_day=10).run(180)
        np.testing.assert_array_equal(a["cases_per_million"],
                                      b["cases_per_million"])
        np.testing.assert_array_equal(a["S"], b["S"])

    def test_parameter_object_is_pure(self):
        p = SEIRParams()
        m1 = VariantSEIRModel([VariantSpec("X", r0=3.0)], params=p)
        m2 = VariantSEIRModel([VariantSpec("X", r0=3.0)], params=p)
        np.testing.assert_array_equal(m1.run(60)["cases_per_million"],
                                      m2.run(60)["cases_per_million"])


class TestWaveShape:
    def test_peak_height_monotone_in_r0(self):
        peaks = [regional_wave_scenario(r0=r0).run(180)
                 ["cases_per_million"].max()
                 for r0 in (4.0, 5.5, 7.0)]
        assert peaks[0] < peaks[1] < peaks[2]

    def test_peak_day_monotone_in_r0(self):
        # A more transmissible wave peaks earlier.
        days = [int(np.argmax(regional_wave_scenario(r0=r0).run(180)
                              ["cases_per_million"]))
                for r0 in (4.5, 5.5, 7.0)]
        assert days[0] > days[1] > days[2]

    def test_onset_day_shifts_the_peak(self):
        base = int(np.argmax(regional_wave_scenario(
            r0=5.5, onset_day=0, days=240).run(240)["cases_per_million"]))
        shifted = int(np.argmax(regional_wave_scenario(
            r0=5.5, onset_day=30, days=240).run(240)["cases_per_million"]))
        assert shifted == pytest.approx(base + 30, abs=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            regional_wave_scenario(r0=0.0)
        with pytest.raises(ValueError):
            regional_wave_scenario(onset_day=400, days=180)
