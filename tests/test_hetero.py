"""Tests for the heterogeneous inference substrate (Tables 4-7, Figs. 9-10)."""

import numpy as np
import pytest

from repro.hetero import (
    DEVICES,
    INTEL_ARRIA10,
    INTEL_XEON_6128,
    NVIDIA_T4,
    NVIDIA_V100,
    FpgaResourceModel,
    InferenceEngine,
    OptimizationConfig,
    PerfModel,
    conv2d_kernel,
    ddnet_kernel_schedule,
    deconv2d_naive_kernel,
    deconv2d_refactored_kernel,
    kernel_op_counts,
    schedule_totals,
    table6_counts,
)
from repro.hetero.counters import PAPER_TABLE6_MILLIONS
from repro.hetero.device import get_device
from repro.hetero.fpga import ReconfigurationSchedule
from repro.hetero.kernels import (
    batchnorm_kernel,
    conv3d_kernel,
    deconv3d_naive_kernel,
    deconv3d_refactored_kernel,
    leaky_relu_kernel,
    maxpool_kernel,
    unpool_bilinear_kernel,
)
from repro.hetero.perfmodel import PAPER_TABLE4, PAPER_TABLE5, PAPER_TABLE7
from repro.models import DDnet
from repro.tensor import Tensor, no_grad
from repro.tensor import functional as F


class TestDevices:
    def test_table4_specs(self):
        v100 = DEVICES["Nvidia V100 GPU"]
        assert v100.cores == 5120 and v100.bandwidth_gb_s == 900 and v100.frequency_mhz == 1380
        fpga = DEVICES["Intel Arria 10 GX 1150 FPGA"]
        assert fpga.cores == 2 and not fpga.pytorch_supported

    def test_six_platforms(self):
        assert len(DEVICES) == 6

    def test_lookup_by_substring(self):
        assert get_device("V100").name == "Nvidia V100 GPU"
        with pytest.raises(KeyError):
            get_device("Nvidia")  # ambiguous

    def test_pytorch_support_flags(self):
        unsupported = [d.name for d in DEVICES.values() if not d.pytorch_supported]
        assert set(unsupported) == {"AMD Radeon Vega Frontier GPU", "Intel Arria 10 GX 1150 FPGA"}


class TestCounters:
    def test_table6_reproduced_exactly(self):
        """Every Table 6 entry must match within rounding (0.1M)."""
        ours = table6_counts()
        for kernel, (loads, stores, flops) in PAPER_TABLE6_MILLIONS.items():
            got = ours[kernel].in_millions()
            assert abs(got[0] - loads) <= 0.1, kernel
            assert abs(got[1] - stores) <= 0.1, kernel
            assert abs(got[2] - flops) <= 0.2, kernel

    def test_conv_deconv_symmetric(self):
        t6 = table6_counts()
        assert t6["Convolution"] == t6["Deconvolution"]

    def test_naive_deconv_more_traffic(self):
        opt = kernel_op_counts("deconvolution", out_h=16, out_w=16, out_ch=4, in_ch=4, k=3)
        naive = kernel_op_counts("deconvolution_naive", in_h=16, in_w=16, in_ch=4, out_ch=4, k=3)
        assert naive.loads + naive.stores > opt.loads + opt.stores
        assert naive.flops == opt.flops  # same math, different traffic

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            kernel_op_counts("fft", numel=10)


class TestKernels:
    def test_naive_equals_refactored(self, rng):
        """Fig. 9: the two deconvolution formulations agree exactly."""
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(3, 4, 5, 5))
        for stride, padding in [(1, 2), (1, 0), (2, 1)]:
            a = deconv2d_naive_kernel(x, w, stride, padding)
            b = deconv2d_refactored_kernel(x, w, stride, padding)
            assert np.allclose(a.output, b.output, atol=1e-10), (stride, padding)

    def test_refactored_fewer_memory_ops(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        w = rng.normal(size=(2, 2, 5, 5))
        a = deconv2d_naive_kernel(x, w)
        b = deconv2d_refactored_kernel(x, w)
        assert a.counts.stores > b.counts.stores * 10

    def test_conv_kernel_matches_autograd(self, rng):
        x = rng.normal(size=(1, 2, 9, 9))
        w = rng.normal(size=(3, 2, 3, 3))
        res = conv2d_kernel(x, w, stride=2, padding=1)
        ref = F.conv2d(Tensor(x), Tensor(w), stride=2, padding=1).data
        assert np.allclose(res.output, ref)

    def test_maxpool_kernel(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        res = maxpool_kernel(x, 2, 2, 0)
        ref = F.max_pool_nd(Tensor(x), 2, 2).data
        assert np.allclose(res.output, ref)

    def test_unpool_kernel(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        res = unpool_bilinear_kernel(x, 2)
        ref = F.upsample_bilinear(Tensor(x), 2).data
        assert np.allclose(res.output, ref)

    def test_batchnorm_kernel(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        mean, var = rng.normal(size=3), rng.uniform(0.5, 2, size=3)
        g, b = rng.normal(size=3), rng.normal(size=3)
        res = batchnorm_kernel(x, mean, var, g, b)
        gt, bt = Tensor(g), Tensor(b)
        ref = F.batch_norm(Tensor(x), gt, bt, mean, var, training=False).data
        assert np.allclose(res.output, ref)

    def test_leaky_relu_kernel(self, rng):
        x = rng.normal(size=(4, 4))
        res = leaky_relu_kernel(x, 0.1)
        assert np.allclose(res.output, np.where(x > 0, x, 0.1 * x))

    def test_channel_validation(self, rng):
        with pytest.raises(ValueError):
            deconv2d_naive_kernel(np.zeros((1, 3, 4, 4)), np.zeros((2, 2, 3, 3)))

    def test_naive_equals_refactored_3d(self, rng):
        """Fig. 9 extended to volumes: scatter and gather forms agree."""
        x = rng.normal(size=(2, 2, 3, 4, 4))
        w = rng.normal(size=(2, 3, 3, 3, 3))
        for stride, padding in [(1, 0), (1, 1), (2, 1)]:
            a = deconv3d_naive_kernel(x, w, stride, padding)
            b = deconv3d_refactored_kernel(x, w, stride, padding)
            assert a.output.shape == b.output.shape, (stride, padding)
            assert np.allclose(a.output, b.output, atol=1e-10), (stride, padding)

    def test_refactored_3d_matches_input_grad(self, rng):
        """The 3D gather deconv IS the registered conv input-gradient."""
        from repro.tensor.ops_conv import conv_nd_input_grad

        x = rng.normal(size=(1, 2, 3, 4, 4))
        w = rng.normal(size=(2, 3, 3, 3, 3))
        stride, padding = 2, 1
        res = deconv3d_refactored_kernel(x, w, stride, padding)
        out_shape = (1, 3) + tuple(
            (s - 1) * stride + 3 - 2 * padding for s in x.shape[2:])
        ref = conv_nd_input_grad(x, w, out_shape, stride, padding)
        assert np.array_equal(res.output, ref)

    def test_refactored_fewer_memory_ops_3d(self, rng):
        """Table 6's store asymmetry carries over to the 3D kernels."""
        x = rng.normal(size=(1, 2, 4, 4, 4))
        w = rng.normal(size=(2, 2, 3, 3, 3))
        a = deconv3d_naive_kernel(x, w)
        b = deconv3d_refactored_kernel(x, w)
        assert a.counts.stores > b.counts.stores * 10

    def test_3d_wrappers_validate_rank(self):
        with pytest.raises(ValueError):
            conv3d_kernel(np.zeros((1, 2, 4, 4)), np.zeros((2, 2, 3, 3)))
        with pytest.raises(ValueError):
            deconv3d_naive_kernel(np.zeros((1, 2, 4, 4)), np.zeros((2, 2, 3, 3)))


class TestSchedule:
    def test_paper_kernel_counts_in_schedule(self):
        invs = ddnet_kernel_schedule()
        convs = sum(1 for i in invs if i.kind == "convolution")
        deconvs = sum(1 for i in invs if i.kind.startswith("deconvolution"))
        assert convs == 37
        assert deconvs == 8

    def test_naive_flag_switches_kind(self):
        invs = ddnet_kernel_schedule(naive_deconv=True)
        assert all(i.kind != "deconvolution" for i in invs)
        assert sum(1 for i in invs if i.kind == "deconvolution_naive") == 8

    def test_totals_grouping(self):
        totals = schedule_totals(ddnet_kernel_schedule())
        assert totals["convolution"].flops > 0
        assert totals["other"].flops >= 0
        # §5.1.3: convolution does more work than deconvolution (the
        # paper quotes ~1.87×; the exact Table 2 shapes give ~1.13×).
        ratio = totals["convolution"].flops / totals["deconvolution"].flops
        assert 1.0 < ratio < 2.6

    def test_input_size_validation(self):
        with pytest.raises(ValueError):
            ddnet_kernel_schedule(input_size=100)

    def test_batch_scales_counts(self):
        t1 = schedule_totals(ddnet_kernel_schedule(batch=1))
        t2 = schedule_totals(ddnet_kernel_schedule(batch=2))
        assert t2["convolution"].flops == 2 * t1["convolution"].flops


class TestPerfModel:
    @pytest.fixture(scope="class")
    def pm(self):
        return PerfModel()

    def test_table5_within_tolerance(self, pm):
        for name, row in pm.table5().items():
            for group, t in row.items():
                paper = PAPER_TABLE5[name][group]
                assert abs(t - paper) / paper < 0.05, (name, group)

    def test_table7_within_tolerance(self, pm):
        for name, row in pm.table7().items():
            for cfg, t in row.items():
                paper = PAPER_TABLE7[name][cfg]
                assert abs(t - paper) / paper < 0.10, (name, cfg)

    def test_table4_within_tolerance(self, pm):
        for name, row in pm.table4().items():
            for impl, t in row.items():
                paper = PAPER_TABLE4[name][impl]
                if paper is None:
                    assert t is None
                else:
                    assert abs(t - paper) / paper < 0.10, (name, impl)

    def test_v100_fastest(self, pm):
        """§5.1.3: V100 wins; ordering tracks bandwidth among GPUs."""
        t4 = pm.table4()
        opencl = {n: r["opencl"] for n, r in t4.items()}
        assert min(opencl, key=opencl.get) == "Nvidia V100 GPU"
        assert opencl["Nvidia V100 GPU"] < opencl["Nvidia P100 GPU"] < opencl["Nvidia T4 GPU"]

    def test_opencl_beats_pytorch(self, pm):
        """§5.1.3: OpenCL ≥2× faster than PyTorch on every platform."""
        for name, row in pm.table4().items():
            if row["pytorch"] is not None:
                assert row["pytorch"] / row["opencl"] >= 2.0, name

    def test_refactoring_dominates_ladder(self, pm):
        """Table 7: REF is by far the largest step on GPUs."""
        for name, row in pm.table7().items():
            gain_ref = row["baseline"] / row["ref"]
            gain_rest = row["ref"] / row["ref_pf_lu"]
            assert gain_ref > gain_rest, name

    def test_deconv_dominates_cpu_serial(self, pm):
        """§5.1.3: deconvolution is the most expensive optimized kernel
        on CPU and GPU (but not on the vectorized FPGA)."""
        t5 = pm.table5()
        for name in t5:
            if "FPGA" in name:
                continue
            assert t5[name]["deconvolution"] > t5[name]["convolution"], name

    def test_fpga_conv_more_expensive_after_vectorization(self, pm):
        t5 = pm.table5()["Intel Arria 10 GX 1150 FPGA"]
        assert t5["convolution"] > t5["deconvolution"]

    def test_fpga_requires_reconfig_for_extras(self, pm):
        cfg = OptimizationConfig(refactor_deconv=True, prefetch=True, loop_unroll=True,
                                 vectorize=True)
        with pytest.raises(ValueError):
            pm.predict(INTEL_ARRIA10, cfg)

    def test_fpga_opts_rejected_elsewhere(self, pm):
        with pytest.raises(ValueError):
            pm.predict(NVIDIA_V100, OptimizationConfig.fpga_full())

    def test_smaller_workload_scales_down(self, pm):
        small = ddnet_kernel_schedule(input_size=256, batch=8)
        p_small = pm.predict(NVIDIA_V100, schedule=small)
        p_ref = pm.predict(NVIDIA_V100)
        assert p_small.total_s < p_ref.total_s / 4

    def test_predict_batch1_pins_table5_calibration(self, pm):
        """Regression: batch=1 at the reference shape must reproduce the
        Table 5 calibration predictions exactly (the serving layer's
        batch-parameterized query is the same model, not a new one)."""
        for name, device in DEVICES.items():
            base = pm.predict(device)
            batched = pm.predict_batch(device, batch=1)
            assert batched.convolution_s == pytest.approx(base.convolution_s, rel=1e-12)
            assert batched.deconvolution_s == pytest.approx(base.deconvolution_s, rel=1e-12)
            assert batched.other_s == pytest.approx(base.other_s, rel=1e-12)

    def test_predict_batch_scales_linearly(self, pm):
        """The kernel schedule is linear in batch, so service time is too
        — the amortization the serving batcher exploits is in launch
        overheads and queueing, not in the roofline itself."""
        t1 = pm.predict_batch(NVIDIA_V100, batch=1).total_s
        t4 = pm.predict_batch(NVIDIA_V100, batch=4).total_s
        assert t4 == pytest.approx(4 * t1, rel=1e-6)

    def test_predict_batch_rejects_bad_batch(self, pm):
        with pytest.raises(ValueError):
            pm.predict_batch(NVIDIA_V100, batch=0)


class TestFpga:
    def test_ladder_fits_single_bitstream(self):
        assert FpgaResourceModel().fits_single_bitstream(OptimizationConfig.ref_pf_lu())

    def test_full_opts_overflow(self):
        """§4.2.3: simultaneous optimizations exceed the fabric."""
        assert not FpgaResourceModel().fits_single_bitstream(OptimizationConfig.fpga_full())

    def test_split_bitstreams_fit(self):
        rm = FpgaResourceModel()
        full = OptimizationConfig.fpga_full()
        assert rm.bitstream_usage(["convolution", "other"], full).fits()
        assert rm.bitstream_usage(["deconvolution", "other"], full).fits()

    def test_reconfig_schedule_chooses_split_when_worth_it(self):
        rm = FpgaResourceModel()
        sched = ReconfigurationSchedule.plan(
            conv_time_s=9.82, deconv_time_s=2.84, other_time_s=3.99,
            single_bitstream_time_s=65.83, resource_model=rm,
            config=OptimizationConfig.fpga_full(),
        )
        assert sched.num_reconfigurations >= 1
        assert sched.total_time_s < 65.83

    def test_reconfig_schedule_prefers_shared_when_cheap(self):
        rm = FpgaResourceModel()
        sched = ReconfigurationSchedule.plan(
            conv_time_s=1.0, deconv_time_s=1.0, other_time_s=1.0,
            single_bitstream_time_s=3.0, resource_model=rm,
            config=OptimizationConfig.ref_pf_lu(),
        )
        assert sched.num_reconfigurations == 0

    def test_unknown_kernel_kind(self):
        with pytest.raises(KeyError):
            FpgaResourceModel().kernel_usage("fft", OptimizationConfig.baseline())

    def test_utilization_fractions(self):
        u = FpgaResourceModel().bitstream_usage(
            ["convolution"], OptimizationConfig.baseline()
        ).utilization()
        assert all(0.0 < v < 1.0 for v in u.values())


class TestInferenceEngine:
    @pytest.fixture(scope="class")
    def net(self):
        net = DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                    dense_kernel=3, deconv_kernel=3, rng=np.random.default_rng(0))
        return net.eval()

    def test_functional_equivalence(self, net, rng):
        """Engine output must equal the autograd model's output exactly."""
        x = rng.random((1, 1, 16, 16))
        with no_grad():
            ref = net(Tensor(x)).data
        out, _ = InferenceEngine(net, NVIDIA_V100).run(x)
        assert np.allclose(out, ref, atol=1e-12)

    def test_naive_config_same_output(self, net, rng):
        x = rng.random((1, 1, 16, 16))
        a, _ = InferenceEngine(net, NVIDIA_V100).run(x)
        b, _ = InferenceEngine(net, INTEL_XEON_6128, OptimizationConfig.baseline()).run(x)
        assert np.allclose(a, b, atol=1e-12)

    def test_trace_counts_match_schedule(self, net, rng):
        x = rng.random((1, 1, 16, 16))
        _, trace = InferenceEngine(net, NVIDIA_V100).run(x)
        expected = schedule_totals(ddnet_kernel_schedule(
            input_size=16, batch=1, base_channels=4, growth=4,
            num_blocks=2, layers_per_block=2, dense_kernel=3, deconv_kernel=3,
        ))
        got = trace.group_counts()
        assert got["convolution"].flops == expected["convolution"].flops
        assert got["deconvolution"].flops == expected["deconvolution"].flops

    def test_modelled_time_grows_with_workload(self, net, rng):
        eng = InferenceEngine(net, INTEL_XEON_6128)
        _, small = eng.run(rng.random((1, 1, 16, 16)))
        _, large = eng.run(rng.random((2, 1, 32, 32)))
        # 8x the arithmetic; launch overhead keeps the ratio below 8.
        assert large.modelled_time_s > small.modelled_time_s

    def test_slower_device_charges_more_compute_time(self, net, rng):
        """Per-flop the Xeon is far slower than the V100; compare with
        launch overheads excluded (at toy sizes launches dominate)."""
        x = rng.random((1, 1, 16, 16))
        _, fast = InferenceEngine(net, NVIDIA_V100).run(x)
        _, slow = InferenceEngine(net, INTEL_XEON_6128).run(x)
        overhead_fast = len(fast.launches) * NVIDIA_V100.launch_overhead_us * 1e-6
        overhead_slow = len(slow.launches) * INTEL_XEON_6128.launch_overhead_us * 1e-6
        assert (slow.modelled_time_s - overhead_slow) > (fast.modelled_time_s - overhead_fast)

    def test_naive_slower_than_refactored(self, net, rng):
        x = rng.random((1, 1, 16, 16))
        _, opt = InferenceEngine(net, NVIDIA_T4).run(x)
        _, naive = InferenceEngine(net, NVIDIA_T4, OptimizationConfig.baseline()).run(x)
        assert naive.modelled_time_s > opt.modelled_time_s
