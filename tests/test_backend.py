"""Tests for the kernel-dispatch registry, backends, and calibration.

Covers the contract every backend must honor: registration semantics,
bit-identical parity with ``reference`` across shapes / strides /
dimensionalities / dtypes, dispatch-level telemetry, per-module backend
selection, cache invalidation, and the measured-execution calibration
loop that feeds the serving scheduler.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.backend.calibrate import (
    KIND_TO_OP,
    OP_UNITS,
    CalibratedPerfModel,
    KernelCalibration,
    OpCoefficients,
    calibrate_host,
)
from repro.backend.counters import OpCounts, unpool_counts_nd
from repro.backend.registry import (
    REGISTRY,
    dispatch,
    known_backends,
    known_ops,
    set_default_backend,
    trace_dispatches,
    use_backend,
)
from repro.tensor import Tensor, no_grad

ALL_OPS = (
    "avgpool", "batchnorm", "conv", "conv_batch", "conv_bias_act",
    "conv_weight_grad", "deconv", "dequantize_linear", "leaky_relu",
    "maxpool", "quantize_linear", "relu", "unpool", "unpool_deconv",
)

ALL_BACKENDS = ("fast", "opt", "reference")

OP_KINDS = {
    "conv": "convolution", "deconv": "deconvolution",
    "conv_weight_grad": "convolution", "conv_bias_act": "convolution",
    "conv_batch": "convolution", "unpool_deconv": "deconvolution",
    "maxpool": "pooling", "avgpool": "pooling", "unpool": "unpooling",
    "leaky_relu": "leaky_relu", "relu": "relu", "batchnorm": "batchnorm",
    "quantize_linear": "quantize", "dequantize_linear": "dequantize",
}


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def _assert_same(a, b):
    """Bit-identical comparison over ndarray / tuple-of-ndarray results."""
    if isinstance(a, np.ndarray):
        assert b.dtype == a.dtype
        assert np.array_equal(a, b)
        return
    assert type(a) is type(b) and len(a) == len(b)
    for x, y in zip(a, b):
        if isinstance(x, np.ndarray):
            assert y.dtype == x.dtype
            assert np.array_equal(x, y)
        else:
            assert x == y


def _assert_parity(backend, reference, candidate, context=""):
    """Tier-aware parity: bit for ``opt``, ulp tolerance for ``fast``."""
    from repro.backend.precision import assert_tier, tier_for

    assert_tier(tier_for(backend), reference, candidate,
                context=f"{backend} {context}".strip())


class TestRegistry:
    def test_all_ops_registered(self):
        assert tuple(known_ops()) == ALL_OPS

    def test_all_backends_for_every_op(self):
        for op in known_ops():
            assert known_backends(op) == list(ALL_BACKENDS), op

    def test_fast_fallbacks_are_declared_and_registered(self):
        from repro.backend.fast import FALLBACK_OPS
        from repro.backend.lint import lint_registry_coverage

        assert lint_registry_coverage() == []
        for op, fallback in FALLBACK_OPS.items():
            assert op in known_ops()
            assert fallback in known_backends(op)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            REGISTRY.register("conv", "reference", lambda: None)

    def test_kind_change_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            REGISTRY.register("conv", "other", lambda: None, kind="pooling")

    def test_unknown_op_and_backend(self):
        with pytest.raises(KeyError, match="unknown op"):
            dispatch("nope", 1)
        with pytest.raises(KeyError, match="no 'cuda' backend"):
            dispatch("conv", 1, backend="cuda")

    def test_backend_selection_precedence(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        # thread default < use_backend scope < explicit argument: all
        # three produce identical results, so verify via the filter
        # cache that the opt path really ran.
        from repro.backend.opt import clear_filter_cache, filter_cache_size
        w = rng.normal(size=(2, 2, 3, 3))
        clear_filter_cache()
        with no_grad():
            dispatch("conv", x, w, None, 1, 1, want_cols=False,
                     backend="opt")
        assert filter_cache_size() == 1
        clear_filter_cache()

    def test_set_default_backend_validates(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_default_backend("cuda")
        set_default_backend(None)

    def test_use_backend_restores_previous(self, rng):
        from repro.backend.registry import get_backend
        assert get_backend() == "reference"
        with use_backend("opt"):
            assert get_backend() == "opt"
            with use_backend(None):
                assert get_backend() == "reference"
            assert get_backend() == "opt"
        assert get_backend() == "reference"


class TestBackendParity:
    """Every backend must meet its tier against ``reference`` for every op:
    ``opt`` bit-identical, ``fast`` within the dtype-aware ulp tolerance."""

    # (x_shape, w_shape, stride, padding): odd spatial sizes, stride >
    # 1, 5×5 FFT-eligible kernels, and 3D volumes all covered.
    CONV_CASES = [
        ((2, 3, 7, 5), (4, 3, 3, 3), 1, 1),
        ((1, 2, 9, 9), (3, 2, 3, 3), 2, 1),
        ((1, 3, 8, 8), (2, 3, 5, 5), 1, 2),
        ((1, 2, 5, 4, 3), (2, 2, 3, 3, 3), 1, 1),
        ((1, 3, 6, 5, 4), (2, 3, 2, 2, 2), 2, 0),
    ]

    BACKENDS = ("opt", "fast")

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("case", CONV_CASES)
    def test_conv_family(self, rng, case, dtype, backend):
        x_shape, w_shape, stride, padding = case
        x = rng.normal(size=x_shape).astype(dtype)
        w = rng.normal(size=w_shape).astype(dtype)
        bias = rng.normal(size=w_shape[0]).astype(dtype)

        ref = dispatch("conv", x, w, bias, stride, padding,
                       want_cols=True, backend="reference")
        cand = dispatch("conv", x, w, bias, stride, padding,
                        want_cols=True, backend=backend)
        _assert_parity(backend, ref, cand, "conv")

        g, cols2 = ref[0], ref[1]
        _assert_parity(
            backend,
            dispatch("deconv", g, w, x.shape, stride, padding,
                     backend="reference"),
            dispatch("deconv", g, w, x.shape, stride, padding,
                     backend=backend), "deconv")
        _assert_parity(
            backend,
            dispatch("conv_weight_grad", cols2, g, w.shape,
                     backend="reference"),
            dispatch("conv_weight_grad", cols2, g, w.shape,
                     backend=backend), "conv_weight_grad")
        _assert_parity(
            backend,
            dispatch("conv_bias_act", x, w, bias, stride, padding, 0.01,
                     backend="reference"),
            dispatch("conv_bias_act", x, w, bias, stride, padding, 0.01,
                     backend=backend), "conv_bias_act")

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("shape", [(2, 3, 7, 5), (1, 2, 6, 6),
                                       (1, 2, 4, 5, 6)])
    def test_pointwise_and_pooling(self, rng, shape, dtype, backend):
        x = rng.normal(size=shape).astype(dtype)
        c = shape[1]
        mean = rng.normal(size=c).astype(dtype)
        var = rng.uniform(0.5, 2.0, c).astype(dtype)
        gamma = rng.normal(size=c).astype(dtype)
        beta = rng.normal(size=c).astype(dtype)
        calls = [
            ("maxpool", (x, 2, 2, 0), {"want_indices": True}),
            ("maxpool", (x, 3, 2, 1), {"want_indices": False}),
            ("avgpool", (x, 2, 2, 0), {}),
            ("unpool", (x, 2), {}),
            ("leaky_relu", (x, 0.01), {}),
            ("relu", (x,), {}),
            ("batchnorm", (x, mean, var, gamma, beta, 1e-5), {}),
        ]
        for op, args, kwargs in calls:
            _assert_parity(
                backend,
                dispatch(op, *args, backend="reference", **kwargs),
                dispatch(op, *args, backend=backend, **kwargs), op)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fused_ops_parity(self, rng, backend):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(3, 4, 5, 5))
        y_shape = (2, 4, 12, 12)
        _assert_parity(
            backend,
            dispatch("unpool_deconv", x, w, y_shape, 2, (1, 1), (2, 2),
                     backend="reference"),
            dispatch("unpool_deconv", x, w, y_shape, 2, (1, 1), (2, 2),
                     backend=backend), "unpool_deconv")
        scans = [rng.normal(size=(3, 6, 6)) for _ in range(3)]
        wc = rng.normal(size=(4, 3, 5, 5))
        bias = rng.normal(size=4)
        for slope in (None, 0.01):
            _assert_parity(
                backend,
                dispatch("conv_batch", scans, wc, bias, 1, 2, slope,
                         backend="reference"),
                dispatch("conv_batch", scans, wc, bias, 1, 2, slope,
                         backend=backend), "conv_batch")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_quantize_ops_parity(self, rng, backend):
        w = rng.normal(size=(4, 3, 5, 5))
        q_ref, s_ref = dispatch("quantize_linear", w, 0, backend="reference")
        _assert_parity(
            backend, (q_ref, s_ref),
            dispatch("quantize_linear", w, 0, backend=backend),
            "quantize_linear")
        _assert_parity(
            backend,
            dispatch("dequantize_linear", q_ref, s_ref, np.float32,
                     backend="reference"),
            dispatch("dequantize_linear", q_ref, s_ref, np.float32,
                     backend=backend), "dequantize_linear")

    def test_fused_conv_bias_act_matches_composition(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        bias = rng.normal(size=3)
        conv = dispatch("conv", x, w, bias, 1, 1, want_cols=False,
                        backend="reference")[0]
        expected = np.where(conv > 0, conv, 0.01 * conv)
        for backend in known_backends():
            fused = dispatch("conv_bias_act", x, w, bias, 1, 1, 0.01,
                             backend=backend)
            _assert_parity(backend if backend != "reference" else "opt",
                           expected, fused, "conv_bias_act composition")


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    class TestParityProperty:
        """Property-based parity: random shapes/strides/kernels hold each
        backend's tier (``opt`` bit-identical, ``fast`` ulp — kernels up
        to 5×5 so the FFT path is sampled, not just the tiled fallback)."""

        @given(
            n=st.integers(1, 2), c=st.integers(1, 3), f=st.integers(1, 3),
            h=st.integers(3, 11), wdt=st.integers(3, 11),
            k=st.integers(1, 5), stride=st.integers(1, 2),
            padding=st.integers(0, 2), seed=st.integers(0, 2**16),
            f32=st.booleans(),
            backend=st.sampled_from(["opt", "fast"]),
        )
        @settings(max_examples=40, deadline=None)
        def test_conv_and_deconv_parity(self, n, c, f, h, wdt, k, stride,
                                        padding, seed, f32, backend):
            rng = np.random.default_rng(seed)
            dtype = np.float32 if f32 else np.float64
            x = rng.normal(size=(n, c, h, wdt)).astype(dtype)
            w = rng.normal(size=(f, c, k, k)).astype(dtype)
            if h + 2 * padding < k or wdt + 2 * padding < k:
                return
            ref = dispatch("conv", x, w, None, stride, padding,
                           want_cols=False, backend="reference")
            cand = dispatch("conv", x, w, None, stride, padding,
                            want_cols=False, backend=backend)
            _assert_parity(backend, ref[0], cand[0], "conv")
            g = ref[0]
            _assert_parity(
                backend,
                dispatch("deconv", g, w, x.shape, stride, padding,
                         backend="reference"),
                dispatch("deconv", g, w, x.shape, stride, padding,
                         backend=backend), "deconv")
except ImportError:  # pragma: no cover - hypothesis is in the dev extra
    pass


class TestTelemetry:
    def test_dispatch_records_kind_site_counts_time(self, rng):
        class Sink:
            def __init__(self):
                self.rows = []

            def record(self, kind, site, counts, time_s):
                self.rows.append((kind, site, counts, time_s))

        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        sink = Sink()
        with trace_dispatches(sink):
            dispatch("conv", x, w, None, 1, 1, want_cols=False,
                     site="layer1/conv")
            dispatch("relu", x)
        assert len(sink.rows) == 2
        kind, site, counts, time_s = sink.rows[0]
        assert kind == "convolution" and site == "layer1/conv"
        assert counts.flops > 0 and counts.stores == 3 * 6 * 6
        assert time_s >= 0.0
        assert sink.rows[1][0] == "relu"
        assert sink.rows[1][1] == "relu"  # site defaults to the op name

    def test_no_sink_no_overhead_path(self, rng):
        # Outside trace_dispatches the sink is None; dispatch must not
        # record anywhere (smoke: just runs).
        x = rng.normal(size=(2, 2))
        out = dispatch("relu", x)
        assert np.array_equal(out, np.where(x > 0, x, 0.0))

    def test_kernel_kinds_cover_calibration_map(self):
        for op in known_ops():
            assert OP_KINDS[op] == REGISTRY._specs[op].kind
        for kind, op in KIND_TO_OP.items():
            assert op in OP_UNITS


class TestModuleBackend:
    def test_to_backend_propagates_and_validates(self):
        net = nn.Sequential(nn.Conv2d(1, 2, 3), nn.ReLU(),
                            nn.Sequential(nn.Conv2d(2, 1, 3)))
        assert net.backend is None
        net.to_backend("opt")
        assert all(m.backend == "opt" for m in net.modules())
        net.to_backend(None)
        assert all(m.backend is None for m in net.modules())
        with pytest.raises(ValueError, match="unknown backend"):
            net.to_backend("cuda")

    def test_model_forward_identical_across_backends(self, rng):
        from repro.models import DDnet

        model = DDnet(base_channels=4, growth=2, num_blocks=2,
                      layers_per_block=2).eval()
        x = Tensor(rng.normal(size=(1, 1, 16, 16)))
        with no_grad():
            ref = model(x).data
            model.to_backend("opt")
            opt = model(x).data
        assert np.array_equal(ref, opt)

    def test_pipeline_backend_threads_through(self, rng):
        from repro.pipeline import ComputeCovid19Plus

        fw = ComputeCovid19Plus(backend="opt")
        assert fw.enhancement.model.backend == "opt"
        assert fw.classification.model.backend == "opt"


class TestOptCaches:
    def test_filter_cache_hit_and_invalidation(self, rng):
        from repro.backend.opt import clear_filter_cache, filter_cache_size

        clear_filter_cache()
        layer = nn.Conv2d(2, 3, 3, rng=np.random.default_rng(1))
        layer.to_backend("opt")
        x = Tensor(rng.normal(size=(1, 2, 6, 6)))
        with no_grad():
            layer(x)
            assert filter_cache_size() == 1
            layer(x)
            assert filter_cache_size() == 1  # hit, not a second entry
        # load_state_dict replaces weight arrays -> cache must drop.
        layer.load_state_dict(layer.state_dict())
        assert filter_cache_size() == 0
        with no_grad():
            layer(x)
            assert filter_cache_size() == 1
        layer.to_dtype(np.float32)
        assert filter_cache_size() == 0
        clear_filter_cache()

    def test_grad_mode_bypasses_filter_cache(self, rng):
        from repro.backend.opt import clear_filter_cache, filter_cache_size

        clear_filter_cache()
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(2, 2, 3, 3))
        dispatch("conv", x, w, None, 1, 1, want_cols=True, backend="opt")
        assert filter_cache_size() == 0  # training path: no stale risk


class TestCounters3d:
    def test_unpool_3d_per_output_costs(self):
        # Trilinear: 2^3 = 8 corner loads, 2^(3+2) - 2 = 30 FLOPs per
        # output element (the N-d generalization of Table 6's 4 / 14).
        c = unpool_counts_nd((4, 4, 4), ch=2, batch=1)
        outs = 4 * 4 * 4 * 2
        assert c.loads == 8 * outs
        assert c.stores == outs
        assert c.flops == 30 * outs


def _synthetic_calibration(rate: float = 1e-9, overhead: float = 0.0,
                           backend: str = "reference",
                           deconv_rate: float = None) -> KernelCalibration:
    coeffs = {
        op: OpCoefficients(op=op, kind=OP_KINDS[op], unit=unit,
                           seconds_per_unit=(deconv_rate
                                             if op == "deconv"
                                             and deconv_rate is not None
                                             else rate),
                           overhead_s=overhead, samples=3, backend=backend)
        for op, unit in OP_UNITS.items()
    }
    return KernelCalibration(host="test-host", backend=backend,
                             coefficients=coeffs)


class TestCalibration:
    def test_calibrate_host_fits_every_op(self):
        cal = calibrate_host(sizes=(8, 16), repeats=1, warmup=0)
        assert set(cal.coefficients) == set(OP_UNITS)
        for op, coeff in cal.coefficients.items():
            assert coeff.seconds_per_unit > 0, op
            assert coeff.overhead_s >= 0, op
            assert coeff.samples == 2
            assert coeff.unit == OP_UNITS[op]
            assert coeff.backend == "reference"
        assert cal.backend == "reference"

    @pytest.mark.parametrize("backend", ["opt", "fast"])
    def test_calibrate_host_runs_under_requested_backend(self, backend):
        cal = calibrate_host(sizes=(8,), repeats=1, warmup=0,
                             backend=backend)
        assert cal.backend == backend
        assert all(c.backend == backend for c in cal.coefficients.values())
        # And the samples were actually measured under that backend:
        # the workloads run inside use_backend, so the thread default
        # outside is untouched.
        from repro.backend.registry import get_backend
        assert get_backend() == "reference"

    def test_mixed_backend_calibration_refused(self):
        cal = _synthetic_calibration(backend="fast")
        coeffs = dict(cal.coefficients)
        coeffs["conv"] = OpCoefficients(
            op="conv", kind="convolution", unit="flops",
            seconds_per_unit=1e-9, overhead_s=0.0, samples=3, backend="opt")
        with pytest.raises(ValueError, match="mixed-backend"):
            KernelCalibration(host="test-host", backend="fast",
                              coefficients=coeffs)
        with pytest.raises(ValueError, match="mixed-backend"):
            KernelCalibration.from_dict(
                {"host": "h", "backend": "fast",
                 "coefficients": {op: c.to_dict()
                                  for op, c in coeffs.items()}})

    def test_coefficients_dict_defaults_backend_for_old_payloads(self):
        d = {"op": "conv", "kind": "convolution", "unit": "flops",
             "seconds_per_unit": 1e-9, "overhead_s": 0.0, "samples": 3}
        assert OpCoefficients.from_dict(d).backend == "reference"

    def test_coefficients_predict_monotone_in_work(self):
        coeff = OpCoefficients(op="conv", kind="convolution", unit="flops",
                               seconds_per_unit=1e-9, overhead_s=1e-5,
                               samples=3)
        small = OpCounts(loads=10, stores=5, flops=1000)
        big = OpCounts(loads=10, stores=5, flops=100000)
        assert coeff.predict(big) > coeff.predict(small) > 0

    def test_calibration_round_trips_through_dict(self):
        cal = _synthetic_calibration(rate=2e-9, overhead=1e-6)
        back = KernelCalibration.from_dict(cal.to_dict())
        assert back.host == cal.host and back.backend == cal.backend
        for op in cal.coefficients:
            assert back.coefficients[op] == cal.coefficients[op]

    def test_kind_time_maps_schedule_vocabulary(self):
        cal = _synthetic_calibration()
        counts = OpCounts(loads=100, stores=10, flops=1000)
        # Both deconv spellings resolve to the deconv coefficients.
        assert (cal.kind_time("deconvolution", counts)
                == cal.kind_time("deconvolution_naive", counts))
        with pytest.raises(KeyError, match="unknown kernel kind"):
            cal.kind_time("fft", counts)

    def test_group_times_cover_reference_schedule(self):
        from repro.hetero.schedule import ddnet_kernel_schedule

        cal = _synthetic_calibration()
        groups = cal.group_times(ddnet_kernel_schedule())
        assert set(groups) == {"convolution", "deconvolution", "other"}
        assert all(v > 0 for v in groups.values())


class TestCalibratedPerfModel:
    def test_ratios_preserved_absolute_rescaled(self):
        from repro.hetero import DEVICES, PerfModel

        base = PerfModel()
        cal_model = CalibratedPerfModel(_synthetic_calibration())
        p100, t4 = DEVICES["Nvidia P100 GPU"], DEVICES["Nvidia T4 GPU"]
        for part in ("convolution_s", "deconvolution_s", "other_s"):
            base_ratio = (getattr(base.predict(p100), part)
                          / getattr(base.predict(t4), part))
            cal_ratio = (getattr(cal_model.predict(p100), part)
                         / getattr(cal_model.predict(t4), part))
            assert cal_ratio == pytest.approx(base_ratio, rel=1e-12)
        # Every group scales by its correction factor exactly.
        for part, group in (("convolution_s", "convolution"),
                            ("deconvolution_s", "deconvolution"),
                            ("other_s", "other")):
            assert getattr(cal_model.predict(p100), part) == pytest.approx(
                getattr(base.predict(p100), part)
                * cal_model.corrections[group])

    def test_unknown_anchor_rejected(self):
        with pytest.raises(KeyError, match="unknown anchor"):
            CalibratedPerfModel(_synthetic_calibration(), anchor="TPU v9")

    def test_placement_flips_with_calibrated_deconv_cost(self):
        """Perf-aware placement changes when measurement disagrees with
        the analytic model.

        Analytically (Table 5) the P100 beats the T4 on a DDnet batch
        (0.249 s vs 0.292 s per chunk).  If this host's measured
        execution shows deconvolution 5x more expensive than the
        anchor's analytic split — everything else matching — the T4's
        smaller deconv share makes it the better pick, and the
        scheduler built on the calibrated model must flip to it.
        """
        from repro.hetero.device import DEVICES
        from repro.serve.batcher import Batch
        from repro.serve.scheduler import FleetScheduler, ServiceTimeModel

        fleet = [DEVICES["Nvidia P100 GPU"], DEVICES["Nvidia T4 GPU"]]
        batch = Batch(batch_id=0, stage="enhance", requests=[object()],
                      formed_s=0.0)

        analytic = FleetScheduler(fleet, policy="perf-aware",
                                  service_model=ServiceTimeModel())
        assert analytic.pick(batch, now=0.0).spec.name == "Nvidia P100 GPU"

        cal_model = CalibratedPerfModel(_synthetic_calibration())
        cal_model.corrections = {"convolution": 1.0, "deconvolution": 5.0,
                                 "other": 1.0}
        calibrated = FleetScheduler(
            fleet, policy="perf-aware",
            service_model=ServiceTimeModel(perf_model=cal_model))
        assert calibrated.pick(batch, now=0.0).spec.name == "Nvidia T4 GPU"

    def test_placement_flips_between_backend_calibrations(self):
        """Re-calibrating under ``fast`` changes perf-aware placement.

        The fast backend's FFT deconvolution collapses the measured
        deconv cost; a host whose ``opt`` calibration shows expensive
        deconvolution picks the T4 (smaller deconv share), while the
        same host re-calibrated under ``fast`` (deconv back in line
        with conv) flips the perf-aware scheduler back to the P100.
        """
        from repro.hetero.device import DEVICES
        from repro.serve.batcher import Batch
        from repro.serve.scheduler import FleetScheduler, ServiceTimeModel

        fleet = [DEVICES["Nvidia P100 GPU"], DEVICES["Nvidia T4 GPU"]]
        batch = Batch(batch_id=0, stage="enhance", requests=[object()],
                      formed_s=0.0)

        def pick(cal):
            model = CalibratedPerfModel(cal)
            sched = FleetScheduler(
                fleet, policy="perf-aware",
                service_model=ServiceTimeModel(perf_model=model))
            return sched.pick(batch, now=0.0).spec.name

        opt_cal = _synthetic_calibration(backend="opt", deconv_rate=20e-9)
        fast_cal = _synthetic_calibration(backend="fast")
        assert pick(opt_cal) == "Nvidia T4 GPU"
        assert pick(fast_cal) == "Nvidia P100 GPU"

    def test_service_time_model_calibrated_integration(self):
        from repro.serve.scheduler import STAGES, ServiceTimeModel

        cal = _synthetic_calibration()
        stm = ServiceTimeModel.calibrated(kernel_calibration=cal)
        assert isinstance(stm.perf_model, CalibratedPerfModel)
        from repro.hetero.device import DEVICES
        v100 = DEVICES["Nvidia V100 GPU"]
        for stage in STAGES:
            assert stm.batch_time(v100, stage, 1) > 0

    def test_service_time_model_calibrates_under_backend(self):
        from repro.serve.scheduler import ServiceTimeModel

        stm = ServiceTimeModel.calibrated(sizes=(8,), repeats=1, warmup=0,
                                          backend="fast")
        assert stm.perf_model.kernel_calibration.backend == "fast"


class TestKernelLint:
    def test_violation_waiver_and_allowlist(self):
        from repro.backend.lint import lint_source

        bad = "import numpy as np\ny = np.matmul(a, b)\n"
        assert len(lint_source(bad)) == 1
        waived = "import numpy as np\ny = np.matmul(a, b)  # kernel-lint: allow\n"
        assert lint_source(waived) == []
        above = ("import numpy as np\n"
                 "# kernel-lint: allow\n"
                 "y = np.matmul(a, b)\n")
        assert lint_source(above) == []
        ok = ("import numpy as np\n"
              "x = np.zeros((2, 2), dtype=np.float32)\n"
              "r = np.random.default_rng(0).normal(size=3)\n"
              "s = np.stack([x, x])\n")
        assert lint_source(ok) == []
        from_imp = "from numpy import einsum\n"
        assert len(lint_source(from_imp)) == 1

    def test_linted_tree_is_clean(self):
        from pathlib import Path

        from repro.backend.lint import lint_paths

        import repro
        src_root = Path(repro.__file__).resolve().parents[1]
        assert lint_paths(src_root) == []


class TestKernelBench:
    def test_quick_payload_schema_and_parity(self):
        from repro.backend.kernel_bench import (
            format_kernel_summary,
            run_kernel_bench,
        )

        payload = run_kernel_bench(quick=True, repeats=1, size=12,
                                   with_calibration=False,
                                   with_precision=False)
        assert payload["bench"] == "kernels" and payload["schema"] == 2
        assert payload["backends"] == ["reference", "fast", "opt"] or \
            payload["backends"][0] == "reference"
        assert set(payload["ops"]) == set(known_ops())
        assert payload["parity_ok"] is True and payload["gate_ok"] is True
        for op, entry in payload["ops"].items():
            for backend in payload["backends"]:
                assert entry[backend]["median_s"] >= 0
                if backend != "reference":
                    parity = entry["parity"][backend]
                    assert parity["ok"] is True, (op, backend)
                    assert parity["tier"] == ("ulp" if backend == "fast"
                                              else "bit")
            assert set(entry["speedups"]) == {"opt", "fast"}
            assert payload["speedup_matrix"][op] == entry["speedups"]
        assert payload["host"]["cpu_count"] >= 1
        summary = format_kernel_summary(payload)
        assert "parity_ok=True" in summary and "gate_ok=True" in summary

    def test_backend_selection_and_validation(self):
        from repro.backend.kernel_bench import run_kernel_bench

        payload = run_kernel_bench(quick=True, repeats=1, size=12,
                                   with_calibration=False,
                                   with_precision=False,
                                   backends=["fast"])
        # The baseline joins automatically; only fast rides along.
        assert payload["backends"] == ["reference", "fast"]
        for entry in payload["ops"].values():
            assert "opt" not in entry and set(entry["speedups"]) == {"fast"}
        with pytest.raises(ValueError, match="unknown backends"):
            run_kernel_bench(quick=True, backends=["cuda"])

    def test_payload_embeds_per_backend_calibrations(self):
        from repro.backend.kernel_bench import run_kernel_bench

        payload = run_kernel_bench(quick=True, repeats=1, size=12,
                                   with_calibration=True,
                                   with_precision=False,
                                   backends=["opt"])
        assert set(payload["calibrations"]) == {"reference", "opt"}
        for backend, blob in payload["calibrations"].items():
            cal = KernelCalibration.from_dict(blob)
            assert cal.backend == backend
            assert set(cal.coefficients) == set(OP_UNITS)

    def test_precision_arm_meets_floors(self):
        from repro.backend.kernel_bench import run_kernel_bench

        payload = run_kernel_bench(quick=True, repeats=1, size=12,
                                   with_calibration=False,
                                   with_precision=True,
                                   backends=["fast"])
        arm = payload["precision"]
        assert set(arm["modes"]) == {"float16", "int8"}
        for mode, m in arm["modes"].items():
            assert m["ok"] is True, (mode, m["metrics"])
            assert set(m["floor_checks"]) == {"ms_ssim", "psnr_db"}
        assert arm["modes"]["float16"]["output_dtype"] == "float16"
        assert arm["modes"]["int8"]["quantized_params"] > 0
        assert payload["precision_ok"] is True and payload["gate_ok"] is True
