"""Tests for the §7 "other maladies" extension (pneumonia, nodules)."""

import numpy as np
import pytest

from repro.data import chest_slice
from repro.data.lesions import (
    COVID_LESION_TYPES,
    LESION_TYPES,
    diffuse_pneumonia,
    nodule,
)
from repro.data.phantom import ChestPhantomConfig
from repro.data.phantom3d import DISEASE_LESIONS, chest_volume
from scipy.ndimage import label


@pytest.fixture
def lung_slice(rng):
    return chest_slice(ChestPhantomConfig(size=64), rng, return_masks=True)


class TestNewLesions:
    def test_covid_menu_excludes_other_maladies(self):
        assert "diffuse_pneumonia" not in COVID_LESION_TYPES
        assert "nodule" not in COVID_LESION_TYPES
        assert set(COVID_LESION_TYPES) | {"diffuse_pneumonia", "nodule"} == set(LESION_TYPES)

    def test_pneumonia_is_multifocal(self, lung_slice, rng):
        img, masks = lung_slice
        out = diffuse_pneumonia(img, masks["lungs"], rng=rng, num_foci=8)
        # Nearby foci merge at low thresholds; core regions stay distinct.
        _, count = label((out - img) > 80.0)
        assert count >= 3  # many scattered foci, not one blob

    def test_pneumonia_bilateral_tendency(self, rng):
        """With many foci, both lungs are usually affected."""
        img, masks = chest_slice(ChestPhantomConfig(size=64),
                                 np.random.default_rng(2), return_masks=True)
        out = diffuse_pneumonia(img, masks["lungs"], rng=np.random.default_rng(3),
                                num_foci=12)
        changed = (out - img) > 20.0
        assert (changed & masks["left_lung"]).any()
        assert (changed & masks["right_lung"]).any()

    def test_nodule_is_dense_and_compact(self, lung_slice, rng):
        img, masks = lung_slice
        out = nodule(img, masks["lungs"], rng=rng)
        changed = (out - img) > 100.0
        assert 0 < changed.sum() < 0.02 * img.size       # small
        assert out[changed].mean() > -150.0              # near soft tissue

    def test_lesions_confined_to_lungs(self, lung_slice, rng):
        img, masks = lung_slice
        for fn in (diffuse_pneumonia, nodule):
            out = fn(img, masks["lungs"], rng=rng)
            assert np.abs((out - img)[~masks["lungs"]]).max() < 1e-9

    def test_empty_mask_raises(self, rng):
        with pytest.raises(ValueError):
            diffuse_pneumonia(np.zeros((16, 16)), np.zeros((16, 16), dtype=bool), rng=rng)


class TestDiseaseVolumes:
    def test_disease_menu_mapping(self):
        assert DISEASE_LESIONS["covid"] == list(COVID_LESION_TYPES)
        assert DISEASE_LESIONS["pneumonia"] == ["diffuse_pneumonia"]
        assert DISEASE_LESIONS["nodule"] == ["nodule"]

    @pytest.mark.parametrize("disease", ["covid", "pneumonia", "nodule"])
    def test_each_disease_produces_lesions(self, disease):
        vol, mask = chest_volume(32, 8, disease=disease,
                                 rng=np.random.default_rng(5), return_lesion_mask=True)
        assert mask.any()

    def test_unknown_disease(self):
        with pytest.raises(KeyError):
            chest_volume(32, 8, disease="influenza")

    def test_disease_overrides_covid_flag(self):
        """disease='pneumonia' must use the pneumonia menu regardless of covid."""
        _, m_pneu = chest_volume(32, 8, disease="pneumonia", covid=False,
                                 rng=np.random.default_rng(9), return_lesion_mask=True)
        assert m_pneu.any()

    def test_covid_flag_alone_unchanged(self):
        """Backwards compatibility: covid=True still uses the Fig. 1 menu."""
        v1, m1 = chest_volume(32, 8, covid=True, rng=np.random.default_rng(4),
                              return_lesion_mask=True)
        v2, m2 = chest_volume(32, 8, disease="covid", rng=np.random.default_rng(4),
                              return_lesion_mask=True)
        assert np.array_equal(v1, v2)
        assert np.array_equal(m1, m2)

    def test_pneumonia_more_diffuse_than_nodule(self):
        """Pneumonia spreads across far more voxels than a nodule."""
        tot_p = tot_n = 0
        for seed in range(3):
            _, mp = chest_volume(32, 8, disease="pneumonia",
                                 rng=np.random.default_rng(seed), return_lesion_mask=True)
            _, mn = chest_volume(32, 8, disease="nodule",
                                 rng=np.random.default_rng(seed), return_lesion_mask=True)
            tot_p += mp.sum()
            tot_n += mn.sum()
        assert tot_p > tot_n
