"""Tests for per-layer int8 quantization (kernels, parameters, checkpoints).

Covers the ``quantize_linear``/``dequantize_linear`` kernel pair, the
lazy-dequant :class:`QuantizedParameter`, module-level quantization with
its accuracy floors, and the checkpoint round-trip — including the
satellite-4 guarantee that reduced-precision state dicts come back at
their recorded dtype, never silently promoted to float64.
"""

import numpy as np
import pytest

from repro.backend.precision import check_floors, ms_ssim, psnr
from repro.backend.registry import clear_kernel_caches, dispatch
from repro.models.ddnet import DDnet
from repro.nn.quantize import (
    MIN_QUANTIZE_NDIM,
    QuantizedParameter,
    dequantize_state_dict,
    load_quantized,
    load_quantized_state,
    quantize_module,
    quantize_state_dict,
    quantized_parameter_count,
    save_quantized,
)
from repro.tensor import Tensor, no_grad


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def _small_ddnet(seed=0):
    return DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                 global_shortcuts=False, rng=np.random.default_rng(seed))


class TestQuantKernels:
    def test_round_trip_error_bound(self, rng):
        x = rng.normal(size=(6, 5, 4)).astype(np.float32)
        q, scale = dispatch("quantize_linear", x, 0)
        assert q.dtype == np.int8
        assert scale.dtype == np.float32
        back = dispatch("dequantize_linear", q, scale, np.float32)
        # Linear quantization error is bounded by half a step per entry.
        assert np.all(np.abs(back - x) <= scale / 2 + 1e-7)

    def test_per_tensor_axis_none(self, rng):
        x = rng.normal(size=(4, 4)).astype(np.float32)
        q, scale = dispatch("quantize_linear", x, None)
        assert scale.size == 1
        back = dispatch("dequantize_linear", q, scale, np.float32)
        assert np.all(np.abs(back - x) <= float(scale.ravel()[0]) / 2 + 1e-7)

    def test_zero_channel_is_exact(self):
        x = np.zeros((3, 4), dtype=np.float32)
        x[1] = np.linspace(-1, 1, 4)
        q, scale = dispatch("quantize_linear", x, 0)
        flat = scale.ravel()
        assert float(flat[0]) == 1.0 and float(flat[2]) == 1.0
        back = dispatch("dequantize_linear", q, scale, np.float32)
        assert np.all(back[0] == 0) and np.all(back[2] == 0)

    def test_dequantize_honors_target_dtype(self, rng):
        x = rng.normal(size=(4, 4)).astype(np.float32)
        q, scale = dispatch("quantize_linear", x, 0)
        for dtype in (np.float16, np.float32, np.float64):
            assert dispatch("dequantize_linear", q, scale, dtype).dtype == dtype


class TestQuantizedParameter:
    def _param(self, rng, dtype=np.float32):
        w = rng.normal(size=(3, 2, 5, 5)).astype(dtype)
        q, scale = dispatch("quantize_linear", w, 0)
        return QuantizedParameter(q, scale, dtype=dtype, name="w"), w

    def test_lazy_dequant_and_cache_drop(self, rng):
        p, _ = self._param(rng)
        assert p.is_quantized
        assert not p.has_cached_dequant()
        data = p.data
        assert data.dtype == np.float32
        assert p.has_cached_dequant()
        assert p.data is data  # cached, not re-dequantized
        clear_kernel_caches()
        assert not p.has_cached_dequant()
        assert p.is_quantized  # cache drop does not de-quantize

    def test_data_setter_dequantizes_permanently(self, rng):
        p, w = self._param(rng)
        p.data = w
        assert not p.is_quantized
        assert np.array_equal(p.data, w)
        with pytest.raises(ValueError, match="de-quantized"):
            p.quantized

    def test_retarget_dtype(self, rng):
        p, _ = self._param(rng)
        p.data  # populate the cache so retarget must drop it
        p.retarget_dtype(np.float16)
        assert p.dequant_dtype == np.float16
        assert p.data.dtype == np.float16
        with pytest.raises(TypeError):
            p.retarget_dtype(np.int32)


class TestQuantizeModule:
    def test_counts_and_eligibility(self):
        m = _small_ddnet()
        n = quantize_module(m)
        assert n > 0
        assert quantized_parameter_count(m) == n
        # Idempotent; BN/bias (ndim < MIN_QUANTIZE_NDIM) never converted.
        assert quantize_module(m) == 0
        for p in m.parameters():
            if p.data.ndim < MIN_QUANTIZE_NDIM:
                assert not isinstance(p, QuantizedParameter)

    def test_forward_meets_int8_floors(self, rng):
        image = rng.uniform(size=(1, 1, 32, 32))
        x = Tensor(image)
        m = _small_ddnet()
        with no_grad():
            ref = m(x).data
            quantize_module(m)
            out = m(x).data
        metrics = {
            "ms_ssim": ms_ssim(ref[0, 0], out[0, 0]),
            "psnr_db": psnr(ref[0, 0], out[0, 0]),
        }
        ok, checks = check_floors("int8", metrics)
        assert ok, checks


class TestStateDictRoundTrip:
    def test_recorded_dtype_never_promoted(self, rng):
        state = {
            "w32": rng.normal(size=(4, 3, 3, 3)).astype(np.float32),
            "w16": rng.normal(size=(4, 3, 3, 3)).astype(np.float16),
            "bias": rng.normal(size=4).astype(np.float32),
        }
        qstate = quantize_state_dict(state)
        assert set(qstate["w32"]) == {"q", "scale", "dtype"}
        assert "raw" in qstate["bias"]  # 1-d stays float, verbatim
        back = dequantize_state_dict(qstate)
        assert back["w32"].dtype == np.float32
        assert back["w16"].dtype == np.float16
        assert back["bias"].dtype == np.float32
        assert not any(a.dtype == np.float64 for a in back.values())
        assert np.array_equal(back["bias"], state["bias"])

    def test_save_load_into_fresh_model(self, rng, tmp_path):
        path = str(tmp_path / "ddnet_int8.npz")
        m = _small_ddnet(seed=5)
        save_quantized(m, path)

        fresh = _small_ddnet(seed=9)  # different init — must be overwritten
        quantize_module(m)
        load_quantized(fresh, path)
        assert quantized_parameter_count(fresh) == quantized_parameter_count(m)

        x = Tensor(rng.normal(size=(1, 1, 16, 16)))
        with no_grad():
            assert np.array_equal(m(x).data, fresh(x).data)

    def test_loaded_state_preserves_recorded_dtype(self, rng, tmp_path):
        path = str(tmp_path / "fp16_int8.npz")
        state = {"w": rng.normal(size=(3, 3)).astype(np.float16)}
        save_quantized(state, path)
        loaded = load_quantized_state(path)
        assert np.dtype(loaded["w"]["dtype"]) == np.float16
        back = dequantize_state_dict(loaded)
        assert back["w"].dtype == np.float16

    def test_unknown_entries_rejected(self, rng, tmp_path):
        path = str(tmp_path / "stray.npz")
        state = {"not_a_param": rng.normal(size=(3, 3)).astype(np.float32)}
        save_quantized(state, path)
        with pytest.raises(KeyError, match="no parameter"):
            load_quantized(_small_ddnet(), path)
