"""Tests for the workload registry (``repro.workload``) and the
quantify arm: registry dispatch, chain routing, mixed-kind serving,
per-kind summaries, and lesion quantification accuracy."""

import json

import numpy as np
import pytest

from repro.data import chest_volume
from repro.pipeline.quantification import (
    LESION_HU_THRESHOLD,
    QuantificationAI,
    QuantificationResult,
    percent_of_involvement,
    severity_band,
)
from repro.serve import (
    SLO,
    ScanRequest,
    ServingEngine,
    make_workload,
    summarize,
    summarize_trace,
)
from repro.workload import (
    DEFAULT_WORKLOADS,
    WorkloadRouter,
    WorkloadSpec,
    get_workload,
    register_workload,
    registered_kinds,
)

BASE_STAGES = ("enhance", "segment", "classify")


class TestRegistry:
    def test_builtin_kinds_registered(self):
        assert set(DEFAULT_WORKLOADS) == {"diagnosis", "monitoring"}
        assert {"diagnosis", "monitoring", "quantify"} <= set(registered_kinds())

    def test_unknown_kind_error_lists_registered(self):
        with pytest.raises(ValueError, match="diagnosis"):
            get_workload("histology")

    def test_monitoring_policy_flags(self):
        spec = get_workload("monitoring")
        assert spec.follow_up
        assert not spec.check_result_cache  # fresh read every time
        assert spec.store_result_cache

    def test_quantify_has_own_slo_and_final_stage(self):
        spec = get_workload("quantify")
        assert spec.final_stage == "quantify"
        assert spec.slo.deadline_s != get_workload("diagnosis").slo.deadline_s
        assert spec.verify_batch is not None

    def test_stage_chain_swaps_terminal_stage(self):
        assert get_workload("diagnosis").stage_chain(BASE_STAGES) == BASE_STAGES
        assert get_workload("quantify").stage_chain(BASE_STAGES) == (
            "enhance", "segment", "quantify")

    def test_register_rejects_duplicates_without_replace(self):
        spec = WorkloadSpec(kind="diagnosis", description="dup",
                            slo=SLO())
        with pytest.raises(ValueError, match="diagnosis"):
            register_workload(spec)


class TestWorkloadRouter:
    def test_stages_are_ordered_union(self):
        router = WorkloadRouter(("diagnosis", "quantify"), BASE_STAGES)
        assert router.stages == ("enhance", "segment", "classify", "quantify")

    def test_next_stage_follows_each_chain(self):
        router = WorkloadRouter(("diagnosis", "quantify"), BASE_STAGES)
        assert router.next_stage("diagnosis", "segment") == "classify"
        assert router.next_stage("quantify", "segment") == "quantify"
        assert router.next_stage("diagnosis", "classify") is None
        assert router.next_stage("quantify", "quantify") is None

    def test_monolithic_collapses_every_chain(self):
        router = WorkloadRouter(("diagnosis", "quantify"), BASE_STAGES,
                                monolithic_stage="pipeline")
        assert router.stages == ("pipeline",)
        assert router.chain("quantify") == ("pipeline",)

    def test_unserved_kind_error_names_served(self):
        router = WorkloadRouter(("diagnosis",), BASE_STAGES)
        assert router.serves("diagnosis")
        assert not router.serves("quantify")
        with pytest.raises(ValueError, match="diagnosis"):
            router.chain("quantify")

    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(ValueError, match="registered"):
            WorkloadRouter(("histology",), BASE_STAGES)


class TestScanRequest:
    def test_unknown_kind_error_lists_registered(self):
        with pytest.raises(ValueError, match="registered kinds"):
            ScanRequest(request_id=0, arrival_s=0.0, seed=1, kind="biopsy")

    def test_is_monitoring_comes_from_registry(self):
        req = ScanRequest(request_id=0, arrival_s=0.0, seed=1,
                          kind="monitoring")
        assert req.is_monitoring
        assert req.workload.follow_up

    def test_quantify_kind_accepted(self):
        req = ScanRequest(request_id=0, arrival_s=0.0, seed=1,
                          kind="quantify")
        assert not req.is_monitoring
        assert req.workload.final_stage == "quantify"


class TestMakeWorkload:
    def test_zero_quantify_fraction_is_bit_identical(self):
        # quantify_fraction=0 must not perturb the RNG stream — the
        # pre-registry workloads replay exactly.
        a = make_workload(50, seed=9, monitor_fraction=0.3)
        b = make_workload(50, seed=9, monitor_fraction=0.3,
                          quantify_fraction=0.0)
        assert [(r.kind, r.seed, r.arrival_s, r.covid) for r in a] == \
               [(r.kind, r.seed, r.arrival_s, r.covid) for r in b]

    def test_quantify_fraction_mixes_kind(self):
        reqs = make_workload(80, seed=9, monitor_fraction=0.2,
                             quantify_fraction=0.3)
        kinds = {r.kind for r in reqs}
        assert kinds == {"diagnosis", "monitoring", "quantify"}
        for r in reqs:
            if r.kind == "quantify":
                assert r.covid  # lesion burden needs lesions
                assert r.slo.deadline_s == get_workload("quantify").slo.deadline_s

    def test_quantify_slo_override(self):
        slow = SLO(deadline_s=300.0)
        reqs = make_workload(40, seed=9, quantify_fraction=0.5,
                             quantify_slo=slow)
        quantify = [r for r in reqs if r.kind == "quantify"]
        assert quantify and all(r.slo.deadline_s == 300.0 for r in quantify)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            make_workload(5, quantify_fraction=1.5)

    def test_pattern_error_lists_valid_patterns(self):
        with pytest.raises(ValueError, match="poisson"):
            make_workload(5, pattern="weibull")


class TestQuantification:
    def test_percent_of_involvement_edges(self):
        lung = np.zeros((2, 4, 4), dtype=bool)
        lesion = np.zeros_like(lung)
        assert percent_of_involvement(lesion, lung) == 0.0
        lung[0] = True
        lesion[0, :2] = True
        assert percent_of_involvement(lesion, lung) == pytest.approx(50.0)
        with pytest.raises(ValueError, match="shapes"):
            percent_of_involvement(lesion[:1], lung)

    def test_severity_bands(self):
        assert severity_band(0.0) == "minimal"
        assert severity_band(10.0) == "mild"
        assert severity_band(30.0) == "moderate"
        assert severity_band(80.0) == "severe"
        with pytest.raises(ValueError):
            severity_band(120.0)

    def test_quantifier_deterministic(self):
        vol = chest_volume(32, 4, covid=True, rng=np.random.default_rng(0))
        q = QuantificationAI()
        a, b = q.quantify(vol), q.quantify(vol)
        assert a == b
        assert isinstance(a, QuantificationResult)
        assert a.severity == severity_band(a.percent_involvement)

    def test_accuracy_against_phantom_ground_truth(self):
        # The per-kind accuracy gate: involvement error vs the lesion
        # phantoms' exact masks stays within the bench tolerance.
        q = QuantificationAI()
        errors = []
        for seed in range(4):
            vol, gt_mask = chest_volume(
                32, 8, covid=True, rng=np.random.default_rng(seed),
                return_lesion_mask=True)
            lung = q.lung_mask(vol)
            gt_pct = percent_of_involvement(gt_mask, lung)
            errors.append(abs(q.quantify(vol).percent_involvement - gt_pct))
        assert np.mean(errors) <= 12.0

    def test_healthy_lung_scores_low(self):
        q = QuantificationAI()
        vol = chest_volume(32, 8, covid=False, rng=np.random.default_rng(5))
        result = q.quantify(vol)
        assert result.percent_involvement < 15.0
        assert LESION_HU_THRESHOLD < -500.0  # below vessel density


@pytest.fixture(scope="module")
def mixed_requests():
    return make_workload(30, seed=7, monitor_fraction=0.3,
                         quantify_fraction=0.25, size=64, slices=16)


class TestMixedServing:
    @pytest.mark.parametrize("mode", ["staged", "dag", "monolithic"])
    def test_mixed_run_completes_all_kinds(self, mixed_requests, mode):
        engine = ServingEngine(mode=mode, queue_capacity=10 ** 6,
                               workloads=("diagnosis", "monitoring",
                                          "quantify"))
        summary = summarize(engine.run(mixed_requests))
        kinds = summary["kinds"]
        assert set(kinds) == {"diagnosis", "monitoring", "quantify"}
        for block in kinds.values():
            assert block["completed"] > 0
            assert 0.0 <= block["slo_attainment"] <= 1.0
        total = sum(b["completed"] + b["shed"] for b in kinds.values())
        assert total == len(mixed_requests)

    def test_quantify_batches_verify_with_quantifier(self, mixed_requests):
        engine = ServingEngine(mode="staged", verify_batches=10 ** 9,
                               queue_capacity=10 ** 6,
                               workloads=("diagnosis", "monitoring",
                                          "quantify"))
        report = engine.run(mixed_requests)
        quantified = [r for r in report.completed
                      if r.request.kind == "quantify" and not r.from_cache]
        assert quantified
        for served in quantified:
            assert isinstance(served.result, QuantificationResult)

    def test_engine_rejects_unserved_kind(self, mixed_requests):
        engine = ServingEngine(mode="staged")  # defaults: no quantify
        with pytest.raises(ValueError, match="does not serve"):
            engine.run(mixed_requests)

    @pytest.mark.parametrize("mode", ["staged", "dag"])
    def test_per_kind_block_trace_round_trip(self, tmp_path, mixed_requests,
                                             mode):
        from repro.telemetry import export_jsonl, load_jsonl

        engine = ServingEngine(mode=mode, queue_capacity=10 ** 6,
                               workloads=("diagnosis", "monitoring",
                                          "quantify"))
        summary = summarize(engine.run(mixed_requests))
        path = str(tmp_path / "trace.jsonl")
        export_jsonl(path, engine.telemetry.events)
        trace_summary = summarize_trace(load_jsonl(path))
        assert json.dumps(summary["kinds"], sort_keys=True) == \
            json.dumps(trace_summary["kinds"], sort_keys=True)

    def test_default_engine_matches_pre_registry_behavior(self):
        # Bit-identity pin: a diagnosis+monitoring stream through the
        # refactored engine must produce the same completions as the
        # registry knows nothing happened.
        requests = make_workload(40, seed=3, monitor_fraction=0.4,
                                 dup_fraction=0.2)
        summary = summarize(ServingEngine(mode="dag").run(requests))
        assert summary["completed"] + summary["shed_queue_full"] \
            + summary["shed_timeout"] == 40
        assert set(summary["kinds"]) <= {"diagnosis", "monitoring"}
