"""Tests for the 3D networks (DenseNet3D, AHNet3D) and 2D baselines."""

import numpy as np
import pytest

import repro.nn as nn
from repro.models import AHNet3D, Classifier2D, DenseNet3D, SliceClassifier, UNet2D
from repro.models.baselines import central_slice_selector
from repro.tensor import Tensor, no_grad


class TestDenseNet3D:
    def test_forward_shape(self, rng):
        net = DenseNet3D(rng=rng)
        out = net(Tensor(rng.normal(size=(2, 1, 16, 16, 16))))
        assert out.shape == (2, 1)

    def test_probability_range(self, rng):
        net = DenseNet3D(rng=rng)
        p = net.predict_proba(Tensor(rng.normal(size=(3, 1, 16, 16, 16))))
        assert p.shape == (3,)
        assert np.all((p.data > 0) & (p.data < 1))

    def test_four_blocks_default(self):
        assert len(DenseNet3D().blocks) == 4  # §2.3.2: four dense blocks

    def test_densenet121_configuration(self):
        assert callable(DenseNet3D.densenet121.__func__)  # class method exists
        cfg = DenseNet3D(block_layers=(6, 12, 24, 16), growth=4, init_features=4)
        assert cfg.block_layers == (6, 12, 24, 16)

    def test_input_validation(self, rng):
        net = DenseNet3D(rng=rng)
        with pytest.raises(ValueError):
            net(Tensor(rng.normal(size=(1, 1, 10, 16, 16))))
        with pytest.raises(ValueError):
            net(Tensor(rng.normal(size=(1, 2, 16, 16, 16))))

    def test_learns_synthetic_discrimination(self, rng):
        """Must separate bright-blob volumes from flat ones quickly."""
        net = DenseNet3D(block_layers=(1, 1, 1, 1), growth=4, init_features=4,
                         rng=np.random.default_rng(0))
        n = 8
        x = rng.normal(0, 0.1, size=(n, 1, 16, 16, 16))
        y = np.zeros(n)
        x[: n // 2, :, 6:10, 6:10, 6:10] += 2.0
        y[: n // 2] = 1.0
        loss_fn = nn.BCEWithLogitsLoss()
        opt = nn.Adam(net.parameters(), lr=3e-3)
        for _ in range(15):
            opt.zero_grad()
            logits = net.train()(Tensor(x))
            loss = loss_fn(logits.reshape(n), Tensor(y))
            loss.backward()
            opt.step()
        net.eval()
        with no_grad():
            p = net.predict_proba(Tensor(x)).data
        assert p[: n // 2].mean() > p[n // 2 :].mean() + 0.2


class TestAHNet3D:
    def test_forward_shape(self, rng):
        net = AHNet3D(base=2, depth=1, rng=rng)
        out = net(Tensor(rng.normal(size=(1, 1, 8, 8, 8))))
        assert out.shape == (1, 1, 8, 8, 8)

    def test_anisotropic_kernel_structure(self):
        """In-plane weights must be zero off the central depth slice."""
        net = AHNet3D(base=2, depth=1, rng=np.random.default_rng(0))
        w = net.enc[0].w_inplane.data  # (out, in, k, k, k)
        k = w.shape[2]
        off = [d for d in range(k) if d != k // 2]
        assert np.all(w[:, :, off] == 0.0)
        wt = net.enc[0].w_through.data
        center = k // 2
        mask = np.ones_like(wt, dtype=bool)
        mask[:, :, :, center, center] = False
        assert np.all(wt[mask] == 0.0)

    def test_predict_mask_binary(self, rng):
        net = AHNet3D(base=2, depth=1, rng=rng)
        mask = net.predict_mask(rng.normal(size=(8, 8, 8)))
        assert mask.dtype == bool

    def test_learns_foreground(self, rng):
        """Distillation smoke test: fit a simple bright-region mask."""
        net = AHNet3D(base=2, depth=1, rng=np.random.default_rng(1))
        x = rng.normal(0, 0.1, size=(4, 1, 8, 8, 8))
        target = np.zeros_like(x)
        x[:, :, 2:6, 2:6, 2:6] += 2.0
        target[:, :, 2:6, 2:6, 2:6] = 1.0
        loss_fn = nn.BCEWithLogitsLoss()
        opt = nn.Adam(net.parameters(), lr=5e-2)
        first = None
        for _ in range(20):
            opt.zero_grad()
            out = net.train()(Tensor(x))
            loss = loss_fn(out, Tensor(target))
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
        assert loss.item() < first * 0.7

    def test_input_validation(self, rng):
        net = AHNet3D(base=2, depth=2, rng=rng)
        with pytest.raises(ValueError):
            net(Tensor(rng.normal(size=(1, 1, 6, 8, 8))))


class TestUNet2D:
    def test_shapes(self, rng):
        net = UNet2D(base=4, depth=2, rng=rng)
        out = net(Tensor(rng.normal(size=(1, 1, 16, 16))))
        assert out.shape == (1, 1, 16, 16)

    def test_residual_mode_near_identity_needs_training(self, rng):
        net = UNet2D(base=4, depth=2, residual=True, rng=rng)
        x = rng.random((1, 1, 16, 16))
        with no_grad():
            out = net.eval()(Tensor(x))
        assert out.shape == (1, 1, 16, 16)

    def test_divisibility_check(self, rng):
        net = UNet2D(base=4, depth=3, rng=rng)
        with pytest.raises(ValueError):
            net(Tensor(rng.normal(size=(1, 1, 12, 12))))


class TestBaselines:
    def test_classifier2d_output(self, rng):
        net = Classifier2D(rng=rng)
        out = net(Tensor(rng.normal(size=(5, 1, 16, 16))))
        assert out.shape == (5, 1)
        p = net.predict_proba(Tensor(rng.normal(size=(5, 1, 16, 16))))
        assert np.all((p.data > 0) & (p.data < 1))

    def test_slice_classifier_pooling_modes(self, rng):
        model = Classifier2D(rng=rng)
        vol = rng.normal(size=(6, 16, 16))
        p_max = SliceClassifier(model, pooling="max").predict_proba(vol)
        p_mean = SliceClassifier(model, pooling="mean").predict_proba(vol)
        assert 0.0 <= p_mean <= p_max <= 1.0

    def test_slice_selector(self):
        sel = central_slice_selector(0.5)
        keep = sel(np.zeros((10, 4, 4)))
        assert keep.sum() < 10
        assert keep[5]
        assert not keep[0]

    def test_slice_classifier_with_selector(self, rng):
        model = Classifier2D(rng=rng)
        sc = SliceClassifier(model, slice_selector=central_slice_selector(0.3))
        p = sc.predict_proba(rng.normal(size=(8, 16, 16)))
        assert 0.0 <= p <= 1.0

    def test_invalid_pooling(self, rng):
        with pytest.raises(ValueError):
            SliceClassifier(Classifier2D(rng=rng), pooling="median")

    def test_volume_shape_check(self, rng):
        sc = SliceClassifier(Classifier2D(rng=rng))
        with pytest.raises(ValueError):
            sc.predict_proba(rng.normal(size=(4, 1, 8, 8)))
