"""Tests for repro.parallel: chunking, shm transport, seeding, and the
bit-identical serial/parallel contract on every wired hot path."""

import numpy as np
import pytest

from repro.ct.fbp import ramp_filter_1d
from repro.ct.geometry import paper_geometry
from repro.data import chest_volume, make_enhancement_pairs
from repro.data.preparation import (
    add_circular_boundary,
    prepare_scan,
    simulate_dose_fraction_volume,
    simulate_low_dose_volume,
)
from repro.parallel import (
    chunk_indices,
    derive_item_seeds,
    parallel_map,
    resolve_workers,
    run_hotpath_bench,
    shm_scope,
    spawn_rngs,
    spawn_seeds,
)
from repro.pipeline import ComputeCovid19Plus
from repro.telemetry import EventBus, spans_from_events

WORKER_COUNTS = (1, 2, 4)


def _square(x):
    return x * x


def _volumes(n=3, size=16, num_slices=16):
    return [
        chest_volume(size, num_slices, covid=bool(i % 2),
                     rng=np.random.default_rng(40 + i))
        for i in range(n)
    ]


class TestChunkIndices:
    def test_concatenation_is_range(self):
        for n in (0, 1, 5, 16, 17):
            for k in (1, 2, 3, 8, 32):
                ranges = chunk_indices(n, k)
                assert [i for r in ranges for i in r] == list(range(n))

    def test_balanced_and_nonempty(self):
        ranges = chunk_indices(10, 4)
        sizes = [len(r) for r in ranges]
        assert sizes == [3, 3, 2, 2]
        assert all(sizes)

    def test_more_chunks_than_items(self):
        assert [len(r) for r in chunk_indices(2, 8)] == [1, 1]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            chunk_indices(-1, 2)
        with pytest.raises(ValueError):
            chunk_indices(4, 0)


class TestResolveWorkers:
    def test_none_means_all_cores(self):
        assert resolve_workers(None) >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestSeeding:
    def test_spawn_seeds_deterministic(self):
        a = spawn_seeds(7, 5)
        b = spawn_seeds(7, 5)
        for sa, sb in zip(a, b):
            assert sa.generate_state(4).tolist() == sb.generate_state(4).tolist()

    def test_spawn_rngs_independent_streams(self):
        draws = [r.random(3) for r in spawn_rngs(0, 4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(draws[i], draws[j])

    def test_derive_item_seeds_matches_serial_loop(self):
        seeds = derive_item_seeds(np.random.default_rng(9), 6)
        rng = np.random.default_rng(9)
        assert seeds == [int(rng.integers(0, 2**31)) for _ in range(6)]


class TestShmArray:
    def test_round_trip(self):
        data = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        with shm_scope() as scope:
            handle = scope.share(data)
            np.testing.assert_array_equal(handle.asarray(), data)
            handle.asarray()[0, 0, 0] = -1.0
            assert handle.copy()[0, 0, 0] == -1.0

    def test_pickle_carries_handle_not_data(self):
        import pickle

        with shm_scope() as scope:
            handle = scope.share(np.zeros((64, 64)))
            blob = pickle.dumps(handle)
            assert len(blob) < 1024  # handle only, never the 32 KiB payload
            clone = pickle.loads(blob)
            clone.asarray()[5, 5] = 3.0
            assert handle.asarray()[5, 5] == 3.0
            clone.close()

    def test_scope_unlinks_on_exit(self):
        with shm_scope() as scope:
            handle = scope.create((4,), np.float64)
            name = handle.name
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestParallelMap:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_order_preserved(self, workers):
        items = list(range(11))
        assert parallel_map(_square, items, workers=workers) == [i * i for i in items]

    def test_empty_and_singleton(self):
        assert parallel_map(_square, [], workers=4) == []
        assert parallel_map(_square, [3], workers=4) == [9]

    @pytest.mark.parametrize("workers", (1, 2))
    def test_emits_chunk_spans(self, workers):
        bus = EventBus()
        parallel_map(_square, list(range(8)), workers=workers, bus=bus)
        spans = spans_from_events(bus.events)
        chunk_spans = [s for s in spans if s.name == "parallel_chunk"]
        wrapper = [s for s in spans if s.name == "parallel_map"]
        assert len(wrapper) == 1
        assert wrapper[0].attrs["items"] == 8
        assert sum(s.attrs["chunk_size"] for s in chunk_spans) == 8
        assert all(s.attrs["workers"] == workers for s in chunk_spans)

    def test_shared_memory_writes_visible(self):
        from functools import partial

        from tests._parallel_helpers import write_index

        with shm_scope() as scope:
            out = scope.create((8,), np.float64)
            parallel_map(partial(write_index, out=out), range(8), workers=2)
            np.testing.assert_array_equal(out.copy(), np.arange(8.0))


class TestDatasetSimulationParity:
    @pytest.mark.parametrize("physics", (False, True))
    def test_bit_identical_across_worker_counts(self, physics):
        ref = make_enhancement_pairs(4, size=16, physics=physics,
                                     rng=np.random.default_rng(7), workers=1)
        for w in WORKER_COUNTS[1:]:
            lows, fulls = make_enhancement_pairs(
                4, size=16, physics=physics,
                rng=np.random.default_rng(7), workers=w)
            np.testing.assert_array_equal(ref[0], lows)
            np.testing.assert_array_equal(ref[1], fulls)

    def test_simulate_low_dose_volume_parity(self):
        volume = np.clip(chest_volume(16, 4, rng=np.random.default_rng(2)),
                         0, None) / 10000.0
        geometry = paper_geometry(scale=0.05)
        ref = simulate_low_dose_volume(volume, geometry, seed=5, workers=1)
        for w in WORKER_COUNTS[1:]:
            full, low = simulate_low_dose_volume(volume, geometry, seed=5, workers=w)
            np.testing.assert_array_equal(ref[0], full)
            np.testing.assert_array_equal(ref[1], low)
        assert not np.array_equal(ref[0], ref[1])  # noise actually applied

    def test_simulate_dose_fraction_volume_parity(self):
        volume = np.clip(chest_volume(16, 3, rng=np.random.default_rng(8)),
                         0, None) / 10000.0
        geometry = paper_geometry(scale=0.05)
        ref = simulate_dose_fraction_volume(volume, geometry, seed=1, workers=1)
        full, frac = simulate_dose_fraction_volume(volume, geometry, seed=1,
                                                   workers=4)
        np.testing.assert_array_equal(ref[0], full)
        np.testing.assert_array_equal(ref[1], frac)
        # the fractional-dose arm is strictly noisier than the full-dose arm
        assert frac.std() != full.std()

    def test_simulate_low_dose_volume_validates_shape(self):
        geometry = paper_geometry(scale=0.05)
        with pytest.raises(ValueError):
            simulate_low_dose_volume(np.zeros((16, 16)), geometry)
        with pytest.raises(ValueError):
            simulate_low_dose_volume(np.zeros((2, 16, 8)), geometry)

    def test_prepare_scan_parity(self):
        rng = np.random.default_rng(3)
        volume = np.stack([
            add_circular_boundary(rng.normal(0, 200, size=(24, 24)))
            for _ in range(6)
        ])
        ref = prepare_scan(volume, min_slices=1, workers=1)
        for w in WORKER_COUNTS[1:]:
            np.testing.assert_array_equal(
                ref, prepare_scan(volume, min_slices=1, workers=w))


class TestBatchInferenceParity:
    def test_score_batch_bit_identical(self):
        framework = ComputeCovid19Plus()
        volumes = _volumes()
        ref = framework.score_batch(volumes)
        for w in WORKER_COUNTS[1:]:
            np.testing.assert_array_equal(
                ref, framework.score_batch(volumes, workers=w))

    def test_diagnose_batch_parallel_matches_per_scan(self):
        framework = ComputeCovid19Plus()
        volumes = _volumes()
        per_scan = [framework.diagnose(v) for v in volumes]
        par = framework.diagnose_batch(volumes, workers=2)
        for a, b in zip(per_scan, par):
            assert a.probability == b.probability
            assert a.prediction == b.prediction
            np.testing.assert_array_equal(a.segmented_volume, b.segmented_volume)
            np.testing.assert_array_equal(a.lung_mask, b.lung_mask)

    def test_diagnose_batch_parallel_close_to_stacked_serial(self):
        framework = ComputeCovid19Plus()
        volumes = _volumes()
        serial = framework.diagnose_batch(volumes)
        par = framework.diagnose_batch(volumes, workers=2)
        np.testing.assert_allclose([r.probability for r in serial],
                                   [r.probability for r in par])

    def test_fanout_emits_spans_on_shared_bus(self):
        framework = ComputeCovid19Plus()
        bus = EventBus()
        framework.score_batch(_volumes(2), workers=2, bus=bus)
        spans = spans_from_events(bus.events)
        assert any(s.name == "parallel_map" and s.source == "repro.pipeline.batch"
                   for s in spans)


class TestNoGradConvFastPath:
    def test_no_grad_conv_records_no_parents(self):
        from repro.tensor import no_grad
        from repro.tensor.ops_conv import conv_nd
        from repro.tensor.tensor import Tensor

        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 8, 8)))
        w = Tensor(np.random.default_rng(1).normal(size=(3, 2, 3, 3)),
                   requires_grad=True)
        with no_grad():
            out = conv_nd(x, w)
        assert out._parents == ()
        assert not out.requires_grad

    def test_forward_drops_im2col_buffer_when_unwanted(self):
        from repro.tensor.ops_conv import conv_nd_forward

        x = np.random.default_rng(0).normal(size=(1, 2, 8, 8))
        w = np.random.default_rng(1).normal(size=(3, 2, 3, 3))
        out_keep, cols, _ = conv_nd_forward(x, w, None, 1, 0, want_cols=True)
        out_drop, dropped, _ = conv_nd_forward(x, w, None, 1, 0, want_cols=False)
        assert cols is not None and dropped is None
        np.testing.assert_array_equal(out_keep, out_drop)

    def test_grad_path_still_produces_weight_grads(self):
        from repro.tensor.ops_conv import conv_nd
        from repro.tensor.tensor import Tensor

        x = Tensor(np.random.default_rng(0).normal(size=(1, 2, 6, 6)))
        w = Tensor(np.random.default_rng(1).normal(size=(2, 2, 3, 3)),
                   requires_grad=True)
        conv_nd(x, w).sum().backward()
        assert w.grad is not None and np.any(w.grad)


class TestFloat32FastPath:
    def test_state_dict_round_trip_preserves_float32(self):
        from repro.models import DenseNet3D

        model = DenseNet3D(block_layers=(1, 1, 1, 1), growth=4, init_features=4,
                           rng=np.random.default_rng(0))
        model.to_dtype(np.float32)
        state = model.state_dict()
        clone = DenseNet3D(block_layers=(1, 1, 1, 1), growth=4, init_features=4,
                           rng=np.random.default_rng(1))
        clone.load_state_dict(state)
        assert clone.dtype == np.float32
        for name, p in clone.named_parameters():
            assert p.data.dtype == np.float32, name

    def test_float32_probability_close_to_float64(self):
        volume = chest_volume(16, 16, rng=np.random.default_rng(4))
        framework = ComputeCovid19Plus()
        p64 = framework.diagnose(volume).probability
        framework.to_dtype(np.float32)
        p32 = framework.diagnose(volume).probability
        assert abs(p64 - p32) < 1e-4

    def test_to_dtype_rejects_non_float(self):
        from repro.models import DenseNet3D

        model = DenseNet3D(block_layers=(1, 1, 1, 1), growth=4, init_features=4)
        with pytest.raises(TypeError):
            model.to_dtype(np.int32)


class TestRampFilterCache:
    def test_cached_calls_return_same_object(self):
        a = ramp_filter_1d(32, 1.0, "hann")
        b = ramp_filter_1d(32, 1.0, "hann")
        assert a is b
        assert not a.flags.writeable

    def test_distinct_keys_distinct_filters(self):
        assert not np.array_equal(ramp_filter_1d(32, 1.0, "hann"),
                                  ramp_filter_1d(32, 1.0, "ramp"))


class TestHotpathBench:
    def test_quick_bench_schema_and_parity(self):
        payload = run_hotpath_bench(quick=True, workers=(1, 2), repeats=1)
        assert payload["parity_ok"]
        assert payload["host"]["cpu_count"] >= 1
        sim = payload["paths"]["dataset_simulation"]
        assert sim["workers"]["2"]["bit_identical_to_serial"]
        assert sim["serial"]["median_s"] > 0
        fp32 = payload["paths"]["float32_inference"]
        assert fp32["prob_delta"] < 1e-4
