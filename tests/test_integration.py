"""Integration tests: the paper's headline claims at reduced scale.

These train real (tiny) networks on the synthetic substrate and assert
the *directions* the paper reports: DDnet enhancement improves image
quality over the low-dose input (Table 8), the classifier learns to
separate COVID from healthy phantoms (§5.2.2), and the DDP-trained
model matches serial training (§4.1).
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.data import make_classification_volumes, make_enhancement_pairs
from repro.data.datasets import ClassificationDataset, EnhancementDataset
from repro.distributed import DistributedDataParallel, ProcessGroup
from repro.metrics import auc_roc, mse, ssim
from repro.models import DDnet, DenseNet3D
from repro.pipeline import ClassificationAI, EnhancementAI


def tiny_ddnet(seed=0, init_std=0.01):
    # Gaussian(0, 0.01) is the paper's init (§3.1.1); with the residual
    # formulation it also starts the net at ~identity, which is what
    # makes the short CPU-scale training budgets converge.
    return DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                 dense_kernel=3, deconv_kernel=3, init_std=init_std,
                 rng=np.random.default_rng(seed))


@pytest.fixture(scope="module")
def physics_pairs():
    """Real CT-physics low/full-dose pairs at calibrated noise."""
    rng = np.random.default_rng(42)
    lows, fulls = make_enhancement_pairs(20, size=32, blank_scan=60.0, rng=rng)
    return lows, fulls


class TestEnhancementImprovesQuality:
    def test_table8_direction(self, physics_pairs):
        """Table 8: MSE(Y, f(X)) < MSE(Y, X) and SSIM rises after DDnet."""
        lows, fulls = physics_pairs
        train = EnhancementDataset(lows[:16], fulls[:16])
        ai = EnhancementAI(model=tiny_ddnet(), lr=2e-3, msssim_levels=1, msssim_window=5)
        ai.train(train, epochs=15, batch_size=2, seed=1)
        test_low, test_full = lows[16:], fulls[16:]
        enhanced = ai.enhance_batch(test_low)
        mse_before = mse(test_full, test_low)
        mse_after = mse(test_full, enhanced)
        assert mse_after < mse_before, (mse_before, mse_after)
        ssim_before = np.mean([ssim(f[0], l[0], window_size=7)
                               for f, l in zip(test_full, test_low)])
        ssim_after = np.mean([ssim(f[0], e[0], window_size=7)
                              for f, e in zip(test_full, enhanced)])
        assert ssim_after > ssim_before

    def test_loss_curve_shape(self, physics_pairs):
        """Fig. 11a: training loss decreases over epochs."""
        lows, fulls = physics_pairs
        ai = EnhancementAI(model=tiny_ddnet(3), lr=2e-3, msssim_levels=1, msssim_window=5)
        hist = ai.train(EnhancementDataset(lows[:8], fulls[:8]), epochs=6, batch_size=2)
        assert hist.train_loss[-1] < hist.train_loss[0]
        # Loss roughly monotone: the last third is below the first third.
        third = len(hist.train_loss) // 3
        assert np.mean(hist.train_loss[-third:]) < np.mean(hist.train_loss[:third])


class TestClassifierLearns:
    def test_separates_covid_from_healthy(self):
        rng = np.random.default_rng(7)
        vols, labels = make_classification_volumes(6, 6, size=16, num_slices=16, rng=rng)
        ds = ClassificationDataset(vols, labels)
        ai = ClassificationAI(
            model=DenseNet3D(block_layers=(1, 1, 1, 1), growth=4, init_features=4,
                             rng=np.random.default_rng(0)),
            lr=3e-3,
        )
        ai.train(ds, epochs=10, batch_size=4, seed=2)
        scores = np.array([ai.predict_proba(v[0]) for v in vols])
        assert auc_roc(labels, scores) > 0.7


class TestDistributedTraining:
    def test_ddp_trains_ddnet(self, physics_pairs):
        """§4.1: DDnet trains under DDP — loss falls, replicas identical.

        (Exact equality with serial large-batch training holds only for
        batch-norm-free models — per-rank BN statistics differ from
        whole-batch statistics, in real PyTorch DDP too; that strict
        equivalence is asserted in test_distributed.py on a BN-free
        net.)
        """
        lows, fulls = physics_pairs
        x, y = lows[:4], fulls[:4]
        loss_fn = nn.MSELoss()

        ddp = DistributedDataParallel(
            lambda: tiny_ddnet(11), ProcessGroup(2), lambda p: nn.Adam(p, lr=2e-3)
        )
        losses = [
            ddp.train_step([(x[:2], y[:2]), (x[2:], y[2:])], loss_fn) for _ in range(8)
        ]
        assert losses[-1] < losses[0]
        assert ddp.replicas_in_sync()
