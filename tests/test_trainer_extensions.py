"""Tests for gradient clipping and early stopping in the Trainer."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.module import Parameter
from repro.pipeline.training import Trainer, clip_gradients


def linear_setup(rng, n=16):
    # Explicit rng: nn's default init generator is global state that
    # other tests advance, and these tests need order independence.
    model = nn.Sequential(nn.Linear(3, 1, rng=np.random.default_rng(0)))
    x = rng.normal(size=(n, 3))
    y = x @ np.array([[1.0], [-1.0], [0.5]])
    return model, nn.TensorDataset(x, y)


class TestClipGradients:
    def test_norm_reduced_to_max(self):
        p = Parameter(np.zeros(4))
        p.grad = np.array([3.0, 4.0, 0.0, 0.0])  # norm 5
        pre = clip_gradients([p], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_small_gradients_untouched(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        clip_gradients([p], max_norm=10.0)
        assert np.allclose(p.grad, [0.1, 0.1])

    def test_global_norm_across_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad, b.grad = np.array([3.0]), np.array([4.0])
        clip_gradients([a, b], max_norm=1.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(1.0)

    def test_none_grads_skipped(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad = np.array([5.0])
        clip_gradients([a, b], max_norm=1.0)
        assert b.grad is None

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_gradients([], max_norm=0.0)


class TestTrainerClipping:
    def test_clipped_training_still_converges(self, rng):
        model, ds = linear_setup(rng)
        opt = nn.Adam(model.parameters(), lr=5e-2)
        trainer = Trainer(model, opt, nn.MSELoss(), grad_clip_norm=1.0)
        hist = trainer.fit(nn.DataLoader(ds, batch_size=4), epochs=25)
        assert hist.train_loss[-1] < hist.train_loss[0] * 0.3

    def test_invalid_clip_norm(self, rng):
        model, _ = linear_setup(rng)
        with pytest.raises(ValueError):
            Trainer(model, nn.Adam(model.parameters(), lr=1e-2), nn.MSELoss(),
                    grad_clip_norm=-1.0)


class TestEarlyStopping:
    def test_stops_when_val_plateaus(self, rng):
        model, ds = linear_setup(rng)
        # A validation target unrelated to the training task: validation
        # loss cannot keep improving, so patience must trigger.
        val = nn.TensorDataset(rng.normal(size=(8, 3)), rng.normal(size=(8, 1)) * 100)
        opt = nn.Adam(model.parameters(), lr=1e-3)
        # min_delta filters out the microscopic per-epoch val drift.
        trainer = Trainer(model, opt, nn.MSELoss(), early_stop_patience=2,
                          early_stop_min_delta=5.0)
        hist = trainer.fit(nn.DataLoader(ds, batch_size=4), epochs=50,
                           val_loader=nn.DataLoader(val, batch_size=4))
        assert hist.stopped_early
        assert hist.epochs < 50

    def test_no_early_stop_while_improving(self, rng):
        model, ds = linear_setup(rng)
        opt = nn.Adam(model.parameters(), lr=5e-2)
        trainer = Trainer(model, opt, nn.MSELoss(), early_stop_patience=3)
        hist = trainer.fit(nn.DataLoader(ds, batch_size=4), epochs=8,
                           val_loader=nn.DataLoader(ds, batch_size=4))
        assert not hist.stopped_early
        assert hist.epochs == 8

    def test_requires_val_loader(self, rng):
        model, ds = linear_setup(rng)
        trainer = Trainer(model, nn.Adam(model.parameters(), lr=1e-2), nn.MSELoss(),
                          early_stop_patience=2)
        with pytest.raises(ValueError):
            trainer.fit(nn.DataLoader(ds, batch_size=4), epochs=5)

    def test_invalid_patience(self, rng):
        model, _ = linear_setup(rng)
        with pytest.raises(ValueError):
            Trainer(model, nn.Adam(model.parameters(), lr=1e-2), nn.MSELoss(),
                    early_stop_patience=0)


class TestTrainerClock:
    def test_standalone_falls_back_to_step_index(self, rng):
        from repro.telemetry import EventBus

        model, ds = linear_setup(rng)
        bus = EventBus()
        trainer = Trainer(model, nn.SGD(model.parameters(), lr=1e-2),
                          nn.MSELoss(), telemetry=bus)
        trainer.fit(nn.DataLoader(ds, batch_size=8), epochs=2)
        steps = [e for e in bus.events if e.kind == "step"]
        assert [e.t for e in steps] == [float(e.payload["step"])
                                        for e in steps]

    def test_shared_event_loop_stamps_simulated_seconds(self, rng):
        from repro.des import EventLoop
        from repro.telemetry import EventBus

        model, ds = linear_setup(rng)
        bus, loop = EventBus(), EventLoop()
        loop.now = 41.5  # mid-simulation: another actor already ran
        trainer = Trainer(model, nn.SGD(model.parameters(), lr=1e-2),
                          nn.MSELoss(), telemetry=bus, clock=loop,
                          step_time_s=0.25)
        trainer.fit(nn.DataLoader(ds, batch_size=8), epochs=1)
        steps = [e for e in bus.events if e.kind == "step"]
        assert len(steps) == 2  # 16 samples / batch 8
        # Each optimizer step advances the shared clock by step_time_s.
        assert [e.t for e in steps] == [41.75, 42.0]
        assert loop.now == pytest.approx(42.0)

    def test_event_loop_advance_rejects_negative(self):
        from repro.des import EventLoop

        loop = EventLoop()
        assert loop.advance(1.5) == 1.5
        with pytest.raises(ValueError):
            loop.advance(-0.1)

    def test_negative_step_time_rejected(self, rng):
        model, _ = linear_setup(rng)
        with pytest.raises(ValueError):
            Trainer(model, nn.SGD(model.parameters(), lr=1e-2),
                    nn.MSELoss(), step_time_s=-1.0)
