"""Property-based tests (hypothesis) on core invariants across modules."""

import numpy as np
from hypothesis import assume, given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ct import hu_to_mu, mu_to_hu, siddon_raycast
from repro.ct.geometry import ParallelBeamGeometry
from repro.hetero.counters import OpCounts, conv_counts, pool_counts
from repro.metrics import ConfusionMatrix, auc_roc, confusion_matrix, mse, psnr
from repro.nn.data import DistributedSampler, TensorDataset
from repro.serve.metrics import LatencyStats
from repro.telemetry import percentile
from repro.tensor import Tensor, functional as F

finite = st.floats(-1e3, 1e3, allow_nan=False)


class TestTensorProperties:
    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 5)),
                      elements=finite))
    def test_add_zero_identity(self, arr):
        out = Tensor(arr) + Tensor(np.zeros_like(arr))
        assert np.array_equal(out.data, arr)

    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 5)),
                      elements=finite))
    def test_mul_distributes_over_add(self, arr):
        a, b = Tensor(arr), Tensor(arr[::-1].copy().reshape(arr.shape))
        lhs = (a + b) * 2.0
        rhs = a * 2.0 + b * 2.0
        assert np.allclose(lhs.data, rhs.data)

    @given(hnp.arrays(np.float64, st.tuples(st.integers(2, 6), st.integers(2, 6)),
                      elements=finite))
    def test_softmax_invariant_to_shift(self, arr):
        a = F.softmax(Tensor(arr), axis=1)
        b = F.softmax(Tensor(arr + 100.0), axis=1)
        assert np.allclose(a.data, b.data, atol=1e-10)

    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 3), st.integers(1, 3),
                                            st.integers(4, 8), st.integers(4, 8)),
                      elements=finite))
    def test_conv_with_identity_kernel(self, arr):
        """1×1 kernel of ones over one channel reproduces channel sums."""
        x = Tensor(arr)
        c = arr.shape[1]
        w = Tensor(np.ones((1, c, 1, 1)))
        out = F.conv2d(x, w)
        assert np.allclose(out.data[:, 0], arr.sum(axis=1))

    @given(st.integers(1, 4), st.integers(2, 5))
    def test_upsample_then_avgpool_identity_on_constants(self, c, n):
        x = Tensor(np.full((1, c, n, n), 2.5))
        up = F.upsample_bilinear(x, 2)
        down = F.avg_pool_nd(up, 2, 2)
        assert np.allclose(down.data, 2.5)


class TestCTProperties:
    @given(hnp.arrays(np.float64, st.tuples(st.integers(4, 10), st.integers(4, 10)),
                      elements=st.floats(0, 1)))
    def test_siddon_superposition(self, img):
        """A(x + y) = A(x) + A(y): the projector is linear."""
        other = np.roll(img, 1, axis=0)
        starts = np.array([[-50.0, 0.3], [-50.0, -1.7]])
        ends = np.array([[50.0, 0.4], [50.0, 2.2]])
        lhs = siddon_raycast(img + other, starts, ends)
        rhs = siddon_raycast(img, starts, ends) + siddon_raycast(other, starts, ends)
        assert np.allclose(lhs, rhs, rtol=1e-9)

    @given(st.floats(-1000, 2000))
    def test_hu_mu_roundtrip(self, hu):
        assume(hu >= -1000)  # hu_to_mu floors at zero attenuation
        back = mu_to_hu(hu_to_mu(np.array([hu])))[0]
        assert np.isclose(back, hu, atol=1e-8)

    @given(st.integers(4, 60), st.integers(3, 41))
    def test_geometry_angles_evenly_spaced(self, views, dets):
        g = ParallelBeamGeometry(num_views=views, num_detectors=dets)
        diffs = np.diff(g.angles)
        assert np.allclose(diffs, diffs[0])

    @given(hnp.arrays(np.float64, st.tuples(st.integers(2, 6), st.integers(2, 6)),
                      elements=st.floats(0, 1)))
    def test_mse_nonnegative_and_symmetric(self, a):
        b = a[::-1].copy().reshape(a.shape)
        assert mse(a, b) >= 0.0
        assert np.isclose(mse(a, b), mse(b, a))

    @given(hnp.arrays(np.float64, st.tuples(st.integers(2, 6), st.integers(2, 6)),
                      elements=st.floats(0, 1)), st.floats(0.01, 0.3))
    def test_psnr_scaling_with_noise(self, a, eps):
        noisy_small = a + eps * 0.1
        noisy_big = a + eps
        assert psnr(a, noisy_small) >= psnr(a, noisy_big)


class TestMetricsProperties:
    @given(st.integers(0, 30), st.integers(0, 30), st.integers(0, 30), st.integers(0, 30))
    def test_confusion_rates_bounded(self, tp, fp, fn, tn):
        assume(tp + fp + fn + tn > 0)
        cm = ConfusionMatrix(tp, fp, fn, tn)
        assert 0.0 <= cm.accuracy <= 1.0
        assert 0.0 <= cm.sensitivity <= 1.0
        assert 0.0 <= cm.specificity <= 1.0
        assert np.isclose(cm.specificity + cm.fpr, 1.0) or (cm.fp + cm.tn == 0)

    @given(st.lists(st.booleans(), min_size=4, max_size=40))
    def test_confusion_from_predictions_consistent(self, bits):
        labels = np.array(bits, dtype=int)
        assume(0 < labels.sum() < len(labels))
        preds = 1 - labels  # maximally wrong
        cm = confusion_matrix(labels, preds)
        assert cm.accuracy == 0.0
        assert cm.tp == 0 and cm.tn == 0

    @given(st.integers(2, 20))
    def test_auc_of_labels_as_scores_is_one(self, n):
        labels = np.array([0, 1] * n)
        assert auc_roc(labels, labels.astype(float)) == 1.0

    @given(st.integers(2, 20), st.floats(0.1, 10.0))
    def test_auc_complement_symmetry(self, n, scale):
        rng = np.random.default_rng(n)
        labels = np.array([0, 1] * n)
        scores = rng.random(2 * n) * scale
        assert np.isclose(auc_roc(labels, scores) + auc_roc(labels, -scores), 1.0)


class TestCounterProperties:
    @given(st.integers(1, 64), st.integers(1, 64), st.integers(1, 8),
           st.integers(1, 8), st.sampled_from([1, 3, 5]))
    def test_conv_counts_scale_linearly_in_batch(self, h, w, co, ci, k):
        one = conv_counts(h, w, co, ci, k, batch=1)
        four = conv_counts(h, w, co, ci, k, batch=4)
        assert four.loads == 4 * one.loads
        assert four.stores == 4 * one.stores
        assert four.flops == 4 * one.flops

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 100))
    def test_opcounts_monoid(self, a, b, c):
        x = OpCounts(a, b, c)
        zero = OpCounts()
        assert x + zero == x
        assert (x + x).loads == 2 * a
        assert x.scaled(3).flops == 3 * c

    @given(st.integers(1, 32), st.integers(1, 16), st.sampled_from([2, 3]))
    def test_pool_counts_no_flops(self, size, ch, k):
        assert pool_counts(size, size, ch, k).flops == 0


class TestPercentileProperties:
    """The repo-wide nearest-rank percentile IS numpy's inverted_cdf."""

    samples = st.lists(st.floats(-1e6, 1e6, allow_nan=False,
                                 allow_infinity=False),
                       min_size=1, max_size=200)

    @given(samples, st.floats(0, 100, allow_nan=False))
    def test_matches_numpy_inverted_cdf(self, values, q):
        expected = float(np.percentile(values, q, method="inverted_cdf"))
        assert percentile(values, q) == expected

    @given(samples)
    def test_q0_and_q100_are_min_and_max(self, values):
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)
        assert percentile(values, 0) == float(
            np.percentile(values, 0, method="inverted_cdf"))
        assert percentile(values, 100) == float(
            np.percentile(values, 100, method="inverted_cdf"))

    @given(st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
           st.floats(0, 100, allow_nan=False))
    def test_singleton_always_returns_the_element(self, x, q):
        assert percentile([x], q) == x

    @given(st.floats(-1e3, 1e3, allow_nan=False), st.integers(2, 50),
           st.floats(0, 100, allow_nan=False))
    def test_duplicates_collapse(self, x, n, q):
        assert percentile([x] * n, q) == x

    @given(samples, st.floats(0, 100, allow_nan=False))
    def test_result_is_an_observed_sample(self, values, q):
        """Nearest-rank never interpolates: the result is in the data."""
        assert percentile(values, q) in values

    def test_empty_latency_stats_pinned_to_nan(self):
        """LatencyStats.from_latencies([]) is all-NaN with count 0."""
        stats = LatencyStats.from_latencies([])
        assert stats.count == 0
        for field in ("mean_s", "p50_s", "p95_s", "p99_s", "max_s"):
            assert np.isnan(getattr(stats, field)), field


class TestSamplerProperties:
    @given(st.integers(2, 40), st.integers(1, 6))
    def test_sampler_partitions_cover(self, n, world):
        assume(world <= n)
        ds = TensorDataset(np.arange(n).reshape(n, 1))
        seen = []
        lengths = set()
        for rank in range(world):
            s = DistributedSampler(ds, world, rank, shuffle=False)
            idx = list(iter(s))
            lengths.add(len(idx))
            seen.extend(idx)
        assert len(lengths) == 1                     # equal shards
        assert set(seen) == set(range(n))            # full coverage

    @given(st.integers(2, 30), st.integers(0, 5))
    def test_sampler_deterministic_per_epoch(self, n, epoch):
        ds = TensorDataset(np.arange(n).reshape(n, 1))
        s1 = DistributedSampler(ds, 2, 0, shuffle=True, seed=9)
        s2 = DistributedSampler(ds, 2, 0, shuffle=True, seed=9)
        s1.set_epoch(epoch)
        s2.set_epoch(epoch)
        assert list(iter(s1)) == list(iter(s2))
