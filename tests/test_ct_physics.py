"""Tests for the CT physics chain: geometry, Siddon, noise, FBP."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ct import (
    FanBeamGeometry,
    ParallelBeamGeometry,
    Sinogram,
    add_poisson_noise,
    counts_to_line_integrals,
    fbp_reconstruct,
    forward_project,
    hu_to_mu,
    mu_to_hu,
    normalize_unit,
    denormalize_unit,
    paper_geometry,
    ramp_filter_1d,
    siddon_raycast,
    simulate_low_dose_pair,
    transmission_counts,
)
from repro.ct.hounsfield import MU_WATER_60KEV


def disk_phantom(n=64, value=0.03, radius_frac=0.35):
    ys, xs = np.mgrid[0:n, 0:n]
    r = np.hypot(xs - n / 2 + 0.5, ys - n / 2 + 0.5)
    return np.where(r < radius_frac * n, value, 0.0)


class TestGeometry:
    def test_paper_geometry_exact(self):
        g = paper_geometry(1.0)
        assert g.source_to_detector == 1500.0   # §3.1.2
        assert g.source_to_isocenter == 1000.0
        assert g.num_views == 720
        assert g.num_detectors == 1024
        assert np.isclose(g.angular_range, 2 * np.pi)

    def test_paper_geometry_scaled(self):
        g = paper_geometry(0.25)
        assert g.num_views == 180
        assert g.num_detectors == 256

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            paper_geometry(0.0)

    def test_fan_sdd_must_exceed_sod(self):
        with pytest.raises(ValueError):
            FanBeamGeometry(source_to_detector=900.0, source_to_isocenter=1000.0)

    def test_detector_coords_centered(self):
        g = ParallelBeamGeometry(num_detectors=11, detector_spacing=2.0)
        c = g.detector_coords
        assert np.isclose(c.mean(), 0.0)
        assert np.isclose(c[1] - c[0], 2.0)

    def test_fan_source_rotates(self):
        g = FanBeamGeometry(num_views=4)
        p0, p1 = g.source_position(0), g.source_position(1)
        assert np.isclose(np.linalg.norm(p0), g.source_to_isocenter)
        assert not np.allclose(p0, p1)

    def test_fan_rays_start_at_source(self):
        g = FanBeamGeometry(num_views=8, num_detectors=16)
        starts, ends = g.rays(3)
        assert np.allclose(starts, g.source_position(3))
        assert ends.shape == (16, 2)


class TestSiddon:
    def test_central_ray_integral(self):
        img = disk_phantom(64, value=0.02)
        li = siddon_raycast(img, [[-100.0, 0.3]], [[100.0, 0.3]])
        # Chord length through the disk at y=0.3: 2·sqrt(R² − y²)
        expect = 0.02 * 2 * np.sqrt((0.35 * 64) ** 2 - 0.3**2)
        assert abs(li[0] - expect) / expect < 0.05

    def test_ray_missing_grid_is_zero(self):
        img = np.ones((8, 8))
        li = siddon_raycast(img, [[-100.0, 50.0]], [[100.0, 50.0]])
        assert li[0] == 0.0

    def test_degenerate_ray_zero(self):
        img = np.ones((8, 8))
        assert siddon_raycast(img, [[1.0, 1.0]], [[1.0, 1.0]])[0] == 0.0

    def test_axis_aligned_vertical(self):
        img = np.ones((10, 10)) * 0.5
        li = siddon_raycast(img, [[0.5, -50.0]], [[0.5, 50.0]])
        assert np.isclose(li[0], 0.5 * 10, rtol=1e-6)

    def test_diagonal_through_uniform(self):
        n = 16
        img = np.ones((n, n))
        li = siddon_raycast(img, [[-50.0, -50.0]], [[50.0, 50.0]])
        assert np.isclose(li[0], n * np.sqrt(2.0), rtol=1e-6)

    def test_linearity_in_image(self, rng):
        img = rng.random((12, 12))
        starts = rng.uniform(-30, -20, size=(5, 2))
        ends = rng.uniform(20, 30, size=(5, 2))
        a = siddon_raycast(img, starts, ends)
        b = siddon_raycast(2.0 * img, starts, ends)
        assert np.allclose(b, 2.0 * a)

    def test_reversed_ray_same_integral(self, rng):
        img = rng.random((12, 12))
        s, e = np.array([[-20.0, 3.0]]), np.array([[25.0, -4.0]])
        assert np.isclose(siddon_raycast(img, s, e)[0], siddon_raycast(img, e, s)[0])

    @given(st.floats(-10, 10), st.floats(-10, 10))
    def test_integral_nonnegative_for_nonneg_image(self, y0, y1):
        img = np.ones((8, 8))
        li = siddon_raycast(img, [[-20.0, y0]], [[20.0, y1]])
        assert li[0] >= 0.0

    def test_pixel_size_scales_integral(self):
        img = np.ones((8, 8))
        a = siddon_raycast(img, [[-20, 0.1]], [[20, 0.1]], pixel_size=1.0)
        b = siddon_raycast(img, [[-40, 0.2]], [[40, 0.2]], pixel_size=2.0)
        assert np.isclose(b[0], 2.0 * a[0], rtol=1e-6)


class TestNoise:
    def test_counts_follow_beers_law(self, rng):
        li = np.full((4, 8), 1.0)
        counts = transmission_counts(li, blank_scan=1e7, rng=rng)
        assert abs(counts.mean() / (1e7 * np.exp(-1.0)) - 1.0) < 0.01

    def test_roundtrip_recovers_integrals_at_high_dose(self, rng):
        li = rng.uniform(0.2, 2.0, size=(10, 32))
        noisy = add_poisson_noise(li, blank_scan=1e9, rng=rng)
        assert np.allclose(noisy, li, atol=1e-3)

    def test_noise_grows_as_dose_drops(self, rng):
        li = np.full((50, 50), 1.0)
        hi = add_poisson_noise(li, blank_scan=1e6, rng=rng)
        lo = add_poisson_noise(li, blank_scan=1e3, rng=rng)
        assert lo.std() > 5 * hi.std()

    def test_zero_counts_clamped(self):
        out = counts_to_line_integrals(np.zeros((2, 2)), blank_scan=100.0)
        assert np.all(np.isfinite(out))
        assert np.allclose(out, np.log(100.0))

    def test_invalid_blank_scan(self):
        with pytest.raises(ValueError):
            transmission_counts(np.ones(3), blank_scan=0.0)


class TestFBP:
    def test_ramp_filter_shape_and_dc(self):
        H = ramp_filter_1d(100)
        assert H.shape[0] >= 200
        assert H[0] < H[1]  # DC is the minimum of the ramp

    def test_hann_suppresses_high_freq(self):
        ramp = ramp_filter_1d(64, window="ramp")
        hann = ramp_filter_1d(64, window="hann")
        nyq = len(ramp) // 2
        assert hann[nyq] < ramp[nyq] * 0.1

    def test_unknown_window(self):
        with pytest.raises(ValueError):
            ramp_filter_1d(64, window="blackman")

    def test_parallel_reconstruction_quantitative(self):
        img = disk_phantom(64, 0.03)
        g = ParallelBeamGeometry(num_views=180, num_detectors=129)
        rec = fbp_reconstruct(forward_project(img, g), g, 64)
        inner = disk_phantom(64, 1.0, 0.25) > 0
        assert abs(rec[inner].mean() - 0.03) < 0.002

    def test_fan_reconstruction_quantitative(self):
        img = disk_phantom(64, 0.03)
        g = FanBeamGeometry(num_views=240, num_detectors=256, detector_spacing=1.5)
        rec = fbp_reconstruct(forward_project(img, g), g, 64)
        inner = disk_phantom(64, 1.0, 0.25) > 0
        assert abs(rec[inner].mean() - 0.03) < 0.003

    def test_sinogram_shape_validation(self):
        g = ParallelBeamGeometry(num_views=10, num_detectors=16)
        with pytest.raises(ValueError):
            fbp_reconstruct(np.zeros((11, 16)), g, 32)

    def test_more_views_reduce_error(self):
        img = disk_phantom(48, 0.02)
        errs = []
        for views in (20, 120):
            g = ParallelBeamGeometry(num_views=views, num_detectors=97)
            rec = fbp_reconstruct(forward_project(img, g), g, 48)
            errs.append(np.abs(rec - img).mean())
        assert errs[1] < errs[0]


class TestHounsfield:
    def test_water_is_zero_hu(self):
        assert np.isclose(mu_to_hu(np.array([MU_WATER_60KEV]))[0], 0.0)

    def test_air_is_minus_1000(self):
        assert np.isclose(hu_to_mu(np.array([-1000.0]))[0], 0.0)

    def test_roundtrip(self, rng):
        hu = rng.uniform(-1000, 1000, size=20)
        assert np.allclose(mu_to_hu(hu_to_mu(hu)), hu, atol=1e-9)

    def test_normalize_window(self):
        unit = normalize_unit(np.array([-1400.0, 200.0, -600.0]))
        assert np.isclose(unit[0], 0.0) and np.isclose(unit[1], 1.0)
        assert 0.0 < unit[2] < 1.0

    def test_normalize_clips(self):
        unit = normalize_unit(np.array([-3000.0, 3000.0]))
        assert unit[0] == 0.0 and unit[1] == 1.0

    def test_denormalize_inverts(self, rng):
        hu = rng.uniform(-1400, 200, size=10)
        assert np.allclose(denormalize_unit(normalize_unit(hu)), hu, atol=1e-9)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            normalize_unit(np.zeros(2), window=(5.0, 5.0))


class TestSimulationPipeline:
    def test_sinogram_container_roundtrip(self):
        img = disk_phantom(32, 0.02)
        g = ParallelBeamGeometry(num_views=60, num_detectors=65)
        sino = Sinogram.from_image(img, g)
        rec = sino.reconstruct(32)
        assert rec.shape == (32, 32)

    def test_shape_mismatch_raises(self):
        g = ParallelBeamGeometry(num_views=10, num_detectors=16)
        with pytest.raises(ValueError):
            Sinogram(np.zeros((9, 16)), g)

    def test_low_dose_pair_noise_ordering(self, rng):
        """Low-dose recon must deviate more from truth than full dose."""
        img = disk_phantom(32, 0.02)
        g = paper_geometry(scale=0.1)
        full, low, noisy = simulate_low_dose_pair(
            img, g, blank_scan=50.0, pixel_size=350.0 / 32, rng=rng
        )
        err_full = np.abs(full - img).mean()
        err_low = np.abs(low - img).mean()
        assert err_low > err_full

    def test_pair_shares_geometry(self, rng):
        img = disk_phantom(32, 0.02)
        g = paper_geometry(scale=0.1)
        _, _, noisy = simulate_low_dose_pair(img, g, rng=rng, pixel_size=10.0)
        assert noisy.data.shape == (g.num_views, g.num_detectors)


class TestWindowPresets:
    def test_presets_available(self):
        from repro.ct.hounsfield import WINDOW_PRESETS, get_window

        assert set(WINDOW_PRESETS) == {"lung", "mediastinal", "bone"}
        assert get_window("lung") == (-1400.0, 200.0)

    def test_unknown_preset(self):
        from repro.ct.hounsfield import get_window

        with pytest.raises(KeyError):
            get_window("brain")

    def test_mediastinal_window_discriminates_soft_tissue(self):
        """Soft tissue spans the mediastinal window's dynamic range but
        saturates in the lung window."""
        from repro.ct.hounsfield import MEDIASTINAL_WINDOW

        soft = np.array([-50.0, 40.0, 120.0])
        med = normalize_unit(soft, MEDIASTINAL_WINDOW)
        lung = normalize_unit(soft)  # default lung window
        assert med.max() - med.min() > lung.max() - lung.min()
