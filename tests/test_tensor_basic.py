"""Unit + property tests for the autograd engine's basic ops."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, functional as F, no_grad
from repro.tensor.gradcheck import gradcheck


def t(arr, rg=True):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=rg)


class TestArithmetic:
    def test_add_backward(self, rng):
        a, b = t(rng.normal(size=(3, 4))), t(rng.normal(size=(3, 4)))
        assert gradcheck(lambda x, y: x + y, [a, b])

    def test_add_broadcast_backward(self, rng):
        a, b = t(rng.normal(size=(3, 4))), t(rng.normal(size=(4,)))
        assert gradcheck(lambda x, y: x + y, [a, b])

    def test_mul_backward(self, rng):
        a, b = t(rng.normal(size=(2, 3))), t(rng.normal(size=(2, 3)))
        assert gradcheck(lambda x, y: x * y, [a, b])

    def test_div_backward(self, rng):
        a = t(rng.normal(size=(2, 3)))
        b = t(rng.uniform(0.5, 2.0, size=(2, 3)))
        assert gradcheck(lambda x, y: x / y, [a, b])

    def test_scalar_mixing(self):
        a = t([1.0, 2.0])
        out = 2.0 * a + 1.0 - a / 2.0
        assert np.allclose(out.data, [2.5, 4.0])
        out.backward(np.ones(2))
        assert np.allclose(a.grad, [1.5, 1.5])

    def test_pow_backward(self, rng):
        a = t(rng.uniform(0.5, 2.0, size=(3,)))
        assert gradcheck(lambda x: x**3, [a])

    def test_neg_sub(self, rng):
        a, b = t(rng.normal(size=(3,))), t(rng.normal(size=(3,)))
        assert gradcheck(lambda x, y: -x - y, [a, b])

    def test_rsub(self):
        a = t([1.0, 2.0])
        out = 5.0 - a
        out.backward(np.ones(2))
        assert np.allclose(out.data, [4.0, 3.0])
        assert np.allclose(a.grad, [-1.0, -1.0])

    def test_exp_log_sqrt_abs(self, rng):
        a = t(rng.uniform(0.5, 2.0, size=(4,)))
        assert gradcheck(lambda x: x.exp(), [a])
        assert gradcheck(lambda x: x.log(), [a])
        assert gradcheck(lambda x: x.sqrt(), [a])
        b = t(rng.normal(size=(4,)) + 0.1)
        assert gradcheck(lambda x: x.abs(), [b])

    def test_clip_gradient_masked(self):
        a = t([-2.0, 0.5, 3.0])
        out = a.clip(0.0, 1.0)
        out.backward(np.ones(3))
        assert np.allclose(out.data, [0.0, 0.5, 1.0])
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])


class TestMatmul:
    def test_2d(self, rng):
        a, b = t(rng.normal(size=(3, 4))), t(rng.normal(size=(4, 5)))
        assert gradcheck(lambda x, y: x @ y, [a, b])

    def test_batched(self, rng):
        a, b = t(rng.normal(size=(2, 3, 4))), t(rng.normal(size=(2, 4, 5)))
        assert gradcheck(lambda x, y: x @ y, [a, b])

    def test_vec_mat(self, rng):
        a, b = t(rng.normal(size=(4,))), t(rng.normal(size=(4, 5)))
        assert gradcheck(lambda x, y: x @ y, [a, b])

    def test_mat_vec(self, rng):
        a, b = t(rng.normal(size=(3, 4))), t(rng.normal(size=(4,)))
        assert gradcheck(lambda x, y: x @ y, [a, b])

    def test_dot(self, rng):
        a, b = t(rng.normal(size=(4,))), t(rng.normal(size=(4,)))
        assert gradcheck(lambda x, y: x @ y, [a, b])


class TestReductions:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), ((0, 1), False)])
    def test_sum(self, rng, axis, keepdims):
        a = t(rng.normal(size=(3, 4)))
        assert gradcheck(lambda x: x.sum(axis=axis, keepdims=keepdims), [a])

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_mean(self, rng, axis):
        a = t(rng.normal(size=(3, 4)))
        assert gradcheck(lambda x: x.mean(axis=axis), [a])

    def test_max_gradient_goes_to_argmax(self):
        a = t([[1.0, 5.0, 2.0]])
        out = a.max()
        out.backward()
        assert np.allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split(self):
        a = t([3.0, 3.0, 1.0])
        a.max().backward()
        assert np.allclose(a.grad, [0.5, 0.5, 0.0])

    def test_min(self, rng):
        a = t(rng.normal(size=(5,)))
        out = a.min()
        assert out.item() == a.data.min()


class TestShape:
    def test_reshape(self, rng):
        a = t(rng.normal(size=(2, 6)))
        assert gradcheck(lambda x: x.reshape(3, 4), [a])

    def test_transpose(self, rng):
        a = t(rng.normal(size=(2, 3, 4)))
        assert gradcheck(lambda x: x.transpose(2, 0, 1), [a])

    def test_default_transpose_reverses(self, rng):
        a = t(rng.normal(size=(2, 3)))
        assert a.T.shape == (3, 2)

    def test_getitem(self, rng):
        a = t(rng.normal(size=(4, 4)))
        assert gradcheck(lambda x: x[1:3, ::2], [a])

    def test_getitem_repeated_index_accumulates(self):
        a = t([1.0, 2.0, 3.0])
        out = a[np.array([0, 0, 2])]
        out.backward(np.ones(3))
        assert np.allclose(a.grad, [2.0, 0.0, 1.0])

    def test_concat(self, rng):
        a, b = t(rng.normal(size=(2, 3))), t(rng.normal(size=(2, 2)))
        assert gradcheck(lambda x, y: F.concat([x, y], axis=1), [a, b])

    def test_stack(self, rng):
        a, b = t(rng.normal(size=(2, 3))), t(rng.normal(size=(2, 3)))
        assert gradcheck(lambda x, y: F.stack([x, y], axis=0), [a, b])

    def test_pad(self, rng):
        a = t(rng.normal(size=(2, 3)))
        assert gradcheck(lambda x: F.pad(x, [(1, 1), (0, 2)]), [a])

    def test_where(self, rng):
        cond = np.array([True, False, True])
        a, b = t(rng.normal(size=(3,))), t(rng.normal(size=(3,)))
        assert gradcheck(lambda x, y: F.where(cond, x, y), [a, b])


class TestActivations:
    @pytest.mark.parametrize(
        "fn",
        [F.relu, lambda x: F.leaky_relu(x, 0.1), F.sigmoid, F.tanh,
         lambda x: F.softmax(x, axis=-1), lambda x: F.log_softmax(x, axis=-1)],
        ids=["relu", "leaky_relu", "sigmoid", "tanh", "softmax", "log_softmax"],
    )
    def test_gradcheck(self, rng, fn):
        a = t(rng.normal(size=(3, 4)) + 0.05)  # nudge off the ReLU kink
        assert gradcheck(fn, [a])

    def test_leaky_relu_values(self):
        a = t([-1.0, 2.0])
        out = F.leaky_relu(a, 0.01)
        assert np.allclose(out.data, [-0.01, 2.0])

    def test_sigmoid_extreme_stability(self):
        a = t([-1000.0, 0.0, 1000.0])
        out = F.sigmoid(a)
        assert np.all(np.isfinite(out.data))
        assert np.allclose(out.data, [0.0, 0.5, 1.0])

    def test_softmax_sums_to_one(self, rng):
        a = t(rng.normal(size=(4, 6)))
        out = F.softmax(a, axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)


class TestEngine:
    def test_no_grad_blocks_graph(self, rng):
        a = t(rng.normal(size=(3,)))
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        with pytest.raises(RuntimeError):
            out.backward(np.ones(3))

    def test_grad_accumulates_across_backwards(self):
        a = t([2.0])
        (a * 3.0).backward()
        (a * 3.0).backward()
        assert np.allclose(a.grad, [6.0])

    def test_zero_grad(self):
        a = t([2.0])
        (a * 3.0).backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph(self):
        # y = x*x + x*x must give dy/dx = 4x through the shared node.
        a = t([3.0])
        b = a * a
        (b + b).backward()
        assert np.allclose(a.grad, [12.0])

    def test_deep_chain_no_recursion_error(self):
        a = t([1.0])
        out = a
        for _ in range(3000):
            out = out * 1.0
        out.backward()
        assert np.allclose(a.grad, [1.0])

    def test_non_scalar_backward_requires_grad_arg(self):
        a = t([1.0, 2.0])
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_int_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError):
            Tensor(np.array([1, 2, 3]), requires_grad=True)

    def test_detach_cuts_graph(self):
        a = t([2.0])
        b = (a * 3.0).detach()
        assert not b.requires_grad

    def test_float32_preserved_with_explicit_dtype(self):
        a = Tensor(np.ones(3, dtype=np.float32), dtype=np.float32)
        assert a.dtype == np.float32


class TestProperties:
    @given(hnp.arrays(np.float64, hnp.array_shapes(max_dims=3, max_side=5),
                      elements=st.floats(-10, 10)))
    def test_add_commutative(self, arr):
        a, b = Tensor(arr), Tensor(arr[::-1].copy().reshape(arr.shape))
        assert np.allclose((a + b).data, (b + a).data)

    @given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=2, max_dims=2, max_side=5),
                      elements=st.floats(-10, 10)))
    def test_double_transpose_identity(self, arr):
        a = Tensor(arr)
        assert np.array_equal(a.T.T.data, arr)

    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 6)),
                      elements=st.floats(-100, 100)))
    def test_sum_matches_numpy(self, arr):
        assert np.allclose(Tensor(arr).sum().item(), arr.sum())

    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 6)),
                      elements=st.floats(-50, 50)))
    def test_relu_idempotent(self, arr):
        a = Tensor(arr)
        once = F.relu(a)
        twice = F.relu(once)
        assert np.array_equal(once.data, twice.data)

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))
    def test_matmul_shape(self, m, k, n):
        a = Tensor(np.ones((m, k)))
        b = Tensor(np.ones((k, n)))
        out = a @ b
        assert out.shape == (m, n)
        assert np.allclose(out.data, k)
