"""Tests for momentum-contrastive pretraining (He et al. baseline)."""

import numpy as np
import pytest

from repro.data.lesions import add_lesion
from repro.data.phantom import ChestPhantomConfig, chest_slice
from repro.models import Classifier2D
from repro.models.moco import MoCoLite, _l2_normalize
from repro.tensor import Tensor


def make_slices(n, covid_frac, seed, size=32):
    srng = np.random.default_rng(seed)
    out, labels = [], []
    for _ in range(n):
        r = np.random.default_rng(srng.integers(2**31))
        img, masks = chest_slice(ChestPhantomConfig(size=size, vessel_count=6), r,
                                 return_masks=True)
        lab = int(r.random() < covid_frac)
        if lab:
            img = add_lesion(img, masks["lungs"], "ggo", rng=r)
        out.append(img / 1000.0)
        labels.append(lab)
    return np.stack(out)[:, None], np.array(labels)


def small_encoder():
    return Classifier2D(base=6, growth=6, rng=np.random.default_rng(0))


class TestMechanics:
    def test_l2_normalize_unit_rows(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        out = _l2_normalize(x)
        assert np.allclose((out.data**2).sum(axis=1), 1.0)

    def test_key_branch_starts_synced(self):
        moco = MoCoLite(encoder=small_encoder())
        q = moco.encoder_q.state_dict()
        k = moco.encoder_k.state_dict()
        for name in q:
            assert np.array_equal(q[name], k[name]), name

    def test_momentum_update_moves_toward_query(self):
        moco = MoCoLite(encoder=small_encoder(), momentum=0.5)
        # Perturb the query branch, then one momentum step.
        for p in moco.encoder_q.parameters():
            p.data += 1.0
        before = moco.encoder_k.parameters()[0].data.copy()
        target = moco.encoder_q.parameters()[0].data
        moco._momentum_update()
        after = moco.encoder_k.parameters()[0].data
        assert np.allclose(after, 0.5 * before + 0.5 * target)

    def test_queue_wraps_fifo(self, rng):
        moco = MoCoLite(encoder=small_encoder(), queue_size=4, proj_dim=8)
        keys = rng.normal(size=(6, 8))
        moco._enqueue(keys)
        assert moco._queue_ptr == 2
        assert np.array_equal(moco.queue[0], keys[4])
        assert np.array_equal(moco.queue[3], keys[3])

    def test_contrastive_loss_finite_and_positive(self):
        moco = MoCoLite(encoder=small_encoder(), rng=np.random.default_rng(1))
        slices, _ = make_slices(4, 0.5, 0)
        loss, keys = moco.contrastive_loss(slices)
        assert np.isfinite(loss.item()) and loss.item() > 0
        assert keys.shape == (4, 8)
        assert np.allclose((keys**2).sum(axis=1), 1.0)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            MoCoLite(encoder=small_encoder(), momentum=1.0)
        with pytest.raises(ValueError):
            MoCoLite(encoder=small_encoder(), queue_size=0)


class TestPretraining:
    @pytest.fixture(scope="class")
    def pretrained(self):
        unlabeled, _ = make_slices(64, 0.0, 1)
        moco = MoCoLite(encoder=small_encoder(), queue_size=16,
                        rng=np.random.default_rng(1))
        losses = moco.pretrain(unlabeled, epochs=6, batch_size=8, lr=5e-4)
        return moco, losses, unlabeled

    def test_loss_stays_bounded(self, pretrained):
        _, losses, _ = pretrained
        # InfoNCE over 1 positive + 16 negatives: uniform scoring gives
        # ln(17) ≈ 2.83; training must hold the loss at or below that
        # (collapse modes shoot well above it).
        assert all(np.isfinite(losses))
        assert losses[-1] < np.log(17) + 0.3

    def test_positive_pairs_align_after_warmup(self):
        """Two augmented views of one slice must embed closer than views
        of different slices.  Asserted on the warmed-up (frozen-BN,
        feature-centered) embedding, which is deterministic; at this toy
        scale subsequent InfoNCE steps maintain rather than enlarge the
        gap (see the module docstring's scale caveat)."""
        unlabeled, _ = make_slices(64, 0.0, 1)
        moco = MoCoLite(encoder=small_encoder(), queue_size=16,
                        rng=np.random.default_rng(1))
        moco.warmup_batchnorm(unlabeled[:32])
        slices = unlabeled[:16]
        from repro.tensor import no_grad

        gaps = []
        for _ in range(6):
            with no_grad():
                q = moco._embed_q(np.stack([moco.augment(s) for s in slices])).data
            k = moco._embed_k(np.stack([moco.augment(s) for s in slices]))
            sim = q @ k.T
            gaps.append(np.diag(sim).mean() - sim[~np.eye(len(sim), dtype=bool)].mean())
        assert np.mean(gaps) > 0.02

    def test_linear_probe_outputs_probabilities(self, pretrained):
        moco, _, _ = pretrained
        xtr, ytr = make_slices(12, 0.5, 2)
        xte, yte = make_slices(8, 0.5, 3)
        scores = moco.linear_probe(xtr, ytr, xte, epochs=20)
        assert scores.shape == (8,)
        assert np.all((scores > 0) & (scores < 1))

    def test_embeddings_shape(self, pretrained):
        moco, _, _ = pretrained
        x, _ = make_slices(3, 0.5, 4)
        feats = moco.embed(x)
        assert feats.shape == (3, moco.encoder_q.feature_dim)
