"""Tests for DDnet — architecture fidelity (Table 2) and trainability."""

import numpy as np
import pytest

from repro.models import DDnet, DenseBlock, ddnet_layer_table
from repro.tensor import Tensor, no_grad


def small_ddnet(**kw):
    defaults = dict(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                    dense_kernel=3, deconv_kernel=3, rng=np.random.default_rng(0))
    defaults.update(kw)
    return DDnet(**defaults)


class TestDenseBlock:
    def test_output_channels(self, rng):
        block = DenseBlock(16, growth=16, num_layers=4, rng=rng)
        assert block.out_channels == 80  # Table 2: 16 + 4·16
        out = block(Tensor(rng.normal(size=(1, 16, 8, 8))))
        assert out.shape == (1, 80, 8, 8)

    def test_dense_connectivity(self, rng):
        """Block output must contain the input feature maps verbatim."""
        block = DenseBlock(3, growth=2, num_layers=2, kernel_size=3, rng=rng)
        x = Tensor(rng.normal(size=(1, 3, 6, 6)))
        out = block(x)
        assert np.array_equal(out.data[:, :3], x.data)

    def test_layer_input_grows(self, rng):
        block = DenseBlock(8, growth=4, num_layers=3, rng=rng)
        ins = [l.conv1.in_channels for l in block.layers]
        assert ins == [8, 12, 16]


class TestDDnetArchitecture:
    def test_paper_layer_counts(self):
        """§2.2: 37 convolution layers and 8 deconvolution layers."""
        net = DDnet()
        convs, deconvs = net.conv_layer_count()
        assert convs == 37
        assert deconvs == 8

    def test_layer_table_matches_paper_shapes(self):
        rows = ddnet_layer_table(512)
        by_layer = {r["layer"]: r["output_size"] for r in rows}
        # Spot checks straight from Table 2.
        assert by_layer["Convolution 1"] == "512x512x16"
        assert by_layer["Pooling 1"] == "256x256x16"
        assert by_layer["Dense Block 1"] == "256x256x80"
        assert by_layer["Dense Block 4"] == "32x32x80"
        assert by_layer["Convolution 5"] == "32x32x16"
        assert by_layer["Un-pooling 1"] == "64x64x16"
        assert by_layer["Deconvolution 1"] == "64x64x32"
        assert by_layer["Un-pooling 4"] == "512x512x16"
        assert by_layer["Deconvolution 8"] == "512x512x1"

    def test_layer_table_row_count(self):
        # 1 stem + 4×3 encoder rows + 4×3 decoder rows = 25
        assert len(ddnet_layer_table(512)) == 25

    def test_forward_shape_preserved(self, rng):
        net = small_ddnet()
        x = Tensor(rng.random((2, 1, 16, 16)))
        with no_grad():
            out = net.eval()(x)
        assert out.shape == (2, 1, 16, 16)

    def test_full_architecture_forward(self, rng):
        """The exact paper configuration forwards at reduced resolution."""
        net = DDnet(rng=rng)
        with no_grad():
            out = net.eval()(Tensor(rng.random((1, 1, 32, 32))))
        assert out.shape == (1, 1, 32, 32)

    def test_input_divisibility_check(self, rng):
        net = small_ddnet()
        with pytest.raises(ValueError):
            net(Tensor(rng.random((1, 1, 10, 10))))

    def test_channel_check(self, rng):
        net = small_ddnet()
        with pytest.raises(ValueError):
            net(Tensor(rng.random((1, 3, 16, 16))))

    def test_residual_identity_at_gaussian_init(self, rng):
        """With 0.01-Gaussian init the residual net starts near identity."""
        net = DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                    dense_kernel=3, deconv_kernel=3, residual=True, init_std=0.01,
                    rng=np.random.default_rng(0))
        x = rng.random((1, 1, 16, 16))
        with no_grad():
            out = net.eval()(Tensor(x))
        assert np.abs(out.data - x).mean() < 0.2

    def test_non_residual_mode(self, rng):
        net = small_ddnet(residual=False)
        x = rng.random((1, 1, 16, 16))
        with no_grad():
            out = net.eval()(Tensor(x))
        # Direct mapping: output unrelated to input at init.
        assert out.shape == (1, 1, 16, 16)

    def test_gaussian_init_std(self):
        net = DDnet(init_std=0.01, rng=np.random.default_rng(0))
        w = net.blocks[0].layers[0].conv2.weight.data
        assert abs(w.std() - 0.01) < 0.003


class TestDDnetTraining:
    def test_denoising_improves(self, rng):
        """A tiny DDnet must reduce the composite loss on a denoising task."""
        import repro.nn as nn

        net = small_ddnet(init_std=None)
        clean = rng.random((4, 1, 16, 16)) * 0.5 + 0.25
        noisy = np.clip(clean + rng.normal(0, 0.1, clean.shape), 0, 1)
        loss_fn = nn.CompositeLoss(levels=1, window_size=5)
        opt = nn.Adam(net.parameters(), lr=3e-3)
        net.train()
        losses = []
        for _ in range(12):
            opt.zero_grad()
            out = net(Tensor(noisy))
            loss = loss_fn(out, Tensor(clean))
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.7

    def test_gradients_reach_all_parameters(self, rng):
        net = small_ddnet()
        out = net.train()(Tensor(rng.random((1, 1, 16, 16))))
        (out * out).mean().backward()
        missing = [n for n, p in net.named_parameters() if p.grad is None]
        assert missing == []
