"""Tests for the evaluation utilities and framework save/load."""

import numpy as np
import pytest

from repro.data import chest_volume
from repro.models import DDnet, DenseNet3D
from repro.pipeline import (
    ClassificationAI,
    ComputeCovid19Plus,
    EnhancementAI,
    evaluate_framework,
    evaluate_scores,
)


def tiny_framework(seed=0):
    enh = EnhancementAI(
        model=DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                    dense_kernel=3, deconv_kernel=3,
                    rng=np.random.default_rng(seed)),
        msssim_levels=1, msssim_window=5,
    )
    cls = ClassificationAI(
        model=DenseNet3D(block_layers=(1, 1, 1, 1), growth=4, init_features=4,
                         rng=np.random.default_rng(seed)),
    )
    return ComputeCovid19Plus(enhancement=enh, classification=cls, threshold=0.4)


class TestEvaluateScores:
    def test_perfect_scores(self):
        labels = np.array([0, 0, 1, 1])
        report = evaluate_scores(labels, np.array([0.1, 0.2, 0.8, 0.9]))
        assert report.accuracy == 1.0
        assert report.auc == 1.0
        assert report.sensitivity == 1.0
        assert report.specificity == 1.0
        assert report.confusion.tp == 2

    def test_fixed_threshold_respected(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.3, 0.4, 0.6, 0.9])
        report = evaluate_scores(labels, scores, threshold=0.5)
        assert report.threshold == 0.5
        assert report.confusion.fp == 1  # the 0.6-scoring negative

    def test_summary_readable(self):
        labels = np.array([0, 1, 0, 1])
        report = evaluate_scores(labels, np.array([0.1, 0.9, 0.2, 0.8]))
        s = report.summary()
        assert "accuracy" in s and "AUC" in s and "n=4" in s

    def test_roc_arrays_present(self):
        labels = np.array([0, 1] * 5)
        report = evaluate_scores(labels, np.linspace(0, 1, 10))
        assert report.fpr[0] == 0.0 and report.tpr[-1] == 1.0


class TestEvaluateFramework:
    def test_end_to_end(self):
        fw = tiny_framework()
        fw.use_enhancement = False  # faster
        vols = [chest_volume(16, 16, covid=bool(i % 2), rng=np.random.default_rng(i))
                for i in range(4)]
        labels = [i % 2 for i in range(4)]
        report = evaluate_framework(fw, vols, labels)
        assert len(report.scores) == 4
        assert 0.0 <= report.accuracy <= 1.0


class TestFrameworkSaveLoad:
    def test_roundtrip_restores_behaviour(self, tmp_path, rng):
        fw = tiny_framework(seed=1)
        fw.threshold = 0.123
        fw.use_enhancement = True
        prefix = str(tmp_path / "deployed")
        fw.save(prefix)

        other = tiny_framework(seed=99)   # different weights
        vol = chest_volume(16, 16, rng=np.random.default_rng(5))
        before = other.diagnose(vol).probability
        other.load(prefix)
        assert other.threshold == pytest.approx(0.123)
        assert other.use_enhancement
        after = other.diagnose(vol).probability
        reference = fw.diagnose(vol).probability
        assert after == pytest.approx(reference, abs=1e-12)
        assert after != pytest.approx(before, abs=1e-12)

    def test_architecture_mismatch_raises(self, tmp_path):
        fw = tiny_framework()
        prefix = str(tmp_path / "m")
        fw.save(prefix)
        bigger = ComputeCovid19Plus(
            enhancement=EnhancementAI(
                model=DDnet(base_channels=8, growth=4, num_blocks=2,
                            layers_per_block=2, dense_kernel=3, deconv_kernel=3)),
            classification=fw.classification,
        )
        with pytest.raises((KeyError, ValueError)):
            bigger.load(prefix)
