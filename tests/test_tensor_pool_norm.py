"""Tests for pooling, up-sampling, and batch normalization ops."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.tensor import Tensor, functional as F
from repro.tensor.gradcheck import gradcheck
from repro.tensor.ops_pool import _bilinear_matrix


def t(arr):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=True)


class TestMaxPool:
    def test_values_2x2(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = F.max_pool_nd(x, 2, 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_ddnet_pool_halves_512_style(self):
        # Paper Table 2: 3x3 stride-2 pooling takes 512->256; check the
        # same arithmetic at reduced size 16->8.
        x = Tensor(np.zeros((1, 1, 16, 16)))
        assert F.max_pool_nd(x, 3, 2, 1).shape == (1, 1, 8, 8)

    def test_gradcheck(self, rng):
        # Distinct values avoid ties that break finite differencing.
        vals = rng.permutation(36).astype(float).reshape(1, 1, 6, 6)
        x = t(vals)
        assert gradcheck(lambda a: F.max_pool_nd(a, 2, 2), [x], eps=1e-3)

    def test_gradcheck_padded(self, rng):
        vals = rng.permutation(25).astype(float).reshape(1, 1, 5, 5)
        x = t(vals)
        assert gradcheck(lambda a: F.max_pool_nd(a, 3, 2, 1), [x], eps=1e-3)

    def test_gradient_routes_to_max_only(self):
        x = t([[[[1.0, 9.0], [2.0, 3.0]]]])
        F.max_pool_nd(x, 2, 2).sum().backward()
        assert np.allclose(x.grad[0, 0], [[0, 1], [0, 0]])

    def test_3d_pooling(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4, 4)))
        out = F.max_pool_nd(x, 2, 2)
        assert out.shape == (1, 2, 2, 2, 2)
        ref = x.data.reshape(1, 2, 2, 2, 2, 2, 2, 2).max(axis=(3, 5, 7))
        assert np.allclose(out.data, ref)

    def test_padding_never_wins(self):
        x = t(-np.ones((1, 1, 4, 4)))
        out = F.max_pool_nd(x, 3, 2, 1)
        assert np.all(out.data == -1.0)


class TestAvgPool:
    def test_values(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = F.avg_pool_nd(x, 2, 2)
        assert np.allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_gradcheck(self, rng):
        x = t(rng.normal(size=(1, 2, 4, 4)))
        assert gradcheck(lambda a: F.avg_pool_nd(a, 2, 2), [x])

    def test_gradcheck_padded_strided(self, rng):
        x = t(rng.normal(size=(1, 1, 5, 5)))
        assert gradcheck(lambda a: F.avg_pool_nd(a, 3, 2, 1), [x])

    def test_global_avg_pool(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 5)))
        out = F.global_avg_pool(x)
        assert out.shape == (2, 3)
        assert np.allclose(out.data, x.data.mean(axis=(2, 3)))


class TestUpsample:
    def test_bilinear_matrix_rows_sum_to_one(self):
        m = _bilinear_matrix(7, 2)
        assert np.allclose(m.sum(axis=1), 1.0)

    def test_constant_preserved(self):
        x = Tensor(np.full((1, 1, 4, 4), 3.5))
        out = F.upsample_bilinear(x, 2)
        assert out.shape == (1, 1, 8, 8)
        assert np.allclose(out.data, 3.5)

    def test_mean_preserved_approximately(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 8, 8)))
        out = F.upsample_bilinear(x, 2)
        # Interior bilinear interpolation preserves the mean closely.
        assert abs(out.data.mean() - x.data.mean()) < 0.1

    def test_gradcheck(self, rng):
        x = t(rng.normal(size=(1, 2, 3, 3)))
        assert gradcheck(lambda a: F.upsample_bilinear(a, 2), [x])

    def test_trilinear_3d(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 3, 3, 3)))
        out = F.upsample_bilinear(x, 2)
        assert out.shape == (1, 1, 6, 6, 6)

    def test_nearest_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = F.upsample_nearest(x, 2)
        assert np.allclose(out.data[0, 0, :2, :2], 1.0)
        assert np.allclose(out.data[0, 0, 2:, 2:], 4.0)

    def test_nearest_gradcheck(self, rng):
        x = t(rng.normal(size=(1, 2, 3, 3)))
        assert gradcheck(lambda a: F.upsample_nearest(a, 2), [x])

    @given(st.integers(2, 8), st.sampled_from([2, 4]))
    def test_upsample_shape(self, n, scale):
        x = Tensor(np.zeros((1, 1, n, n)))
        out = F.upsample_bilinear(x, scale)
        assert out.shape == (1, 1, n * scale, n * scale)


class TestBatchNorm:
    def test_normalizes_batch(self, rng):
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(8, 4, 6, 6)))
        g, b = Tensor(np.ones(4)), Tensor(np.zeros(4))
        out = F.batch_norm(x, g, b, training=True)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-8)
        assert np.allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_affine_applied(self, rng):
        x = Tensor(rng.normal(size=(4, 2, 5, 5)))
        g, b = Tensor(np.array([2.0, 3.0])), Tensor(np.array([-1.0, 1.0]))
        out = F.batch_norm(x, g, b, training=True)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), [-1.0, 1.0], atol=1e-8)

    def test_gradcheck_training(self, rng):
        x = t(rng.normal(size=(3, 2, 3, 3)))
        g = t(rng.uniform(0.5, 1.5, size=2))
        b = t(rng.normal(size=2))
        assert gradcheck(
            lambda a, gg, bb: F.batch_norm(a, gg, bb, training=True), [x, g, b], atol=1e-3
        )

    def test_gradcheck_eval(self, rng):
        x = t(rng.normal(size=(2, 2, 3, 3)))
        g = t(rng.uniform(0.5, 1.5, size=2))
        b = t(rng.normal(size=2))
        rm, rv = rng.normal(size=2), rng.uniform(0.5, 2.0, size=2)
        assert gradcheck(
            lambda a, gg, bb: F.batch_norm(a, gg, bb, rm, rv, training=False), [x, g, b]
        )

    def test_running_stats_update(self, rng):
        x = Tensor(rng.normal(loc=2.0, size=(16, 3, 4, 4)))
        g, b = Tensor(np.ones(3)), Tensor(np.zeros(3))
        rm, rv = np.zeros(3), np.ones(3)
        F.batch_norm(x, g, b, rm, rv, training=True, momentum=1.0)
        assert np.allclose(rm, x.data.mean(axis=(0, 2, 3)))

    def test_eval_uses_running_stats(self, rng):
        x = Tensor(rng.normal(size=(2, 1, 3, 3)))
        g, b = Tensor(np.ones(1)), Tensor(np.zeros(1))
        rm, rv = np.array([10.0]), np.array([4.0])
        out = F.batch_norm(x, g, b, rm, rv, training=False)
        assert np.allclose(out.data, (x.data - 10.0) / np.sqrt(4.0 + 1e-5))

    def test_batchnorm_3d(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 4, 4)))
        g, b = Tensor(np.ones(3)), Tensor(np.zeros(3))
        out = F.batch_norm(x, g, b, training=True)
        assert out.shape == x.shape
        assert np.allclose(out.data.mean(axis=(0, 2, 3, 4)), 0.0, atol=1e-8)
