"""Gradient and reference checks for convolution / transposed convolution."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tensor import Tensor, functional as F
from repro.tensor.gradcheck import gradcheck


def t(arr):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=True)


def conv2d_reference(x, w, b, stride, padding):
    """Literal quadruple-loop convolution used as ground truth."""
    n, c, h, wd = x.shape
    f, _, kh, kw = w.shape
    xp = np.pad(x, [(0, 0), (0, 0), (padding, padding), (padding, padding)])
    ho = (h + 2 * padding - kh) // stride + 1
    wo = (wd + 2 * padding - kw) // stride + 1
    out = np.zeros((n, f, ho, wo))
    for ni in range(n):
        for fi in range(f):
            for i in range(ho):
                for j in range(wo):
                    patch = xp[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[ni, fi, i, j] = (patch * w[fi]).sum() + (b[fi] if b is not None else 0.0)
    return out


def deconv2d_reference(x, w, stride, padding):
    """Literal scatter deconvolution (the paper's Fig. 9a formulation)."""
    n, c, h, wd = x.shape
    _, f, kh, kw = w.shape
    ho = (h - 1) * stride + kh
    wo = (wd - 1) * stride + kw
    out = np.zeros((n, f, ho, wo))
    for ni in range(n):
        for ci in range(c):
            for i in range(h):
                for j in range(wd):
                    out[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw] += (
                        x[ni, ci, i, j] * w[ci]
                    )
    if padding:
        out = out[:, :, padding:-padding, padding:-padding]
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_reference(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        ref = conv2d_reference(x, w, b, stride, padding)
        assert np.allclose(out.data, ref, atol=1e-10)

    def test_gradcheck(self, rng):
        x = t(rng.normal(size=(1, 2, 5, 5)))
        w = t(rng.normal(size=(3, 2, 3, 3)) * 0.3)
        b = t(rng.normal(size=3))
        assert gradcheck(lambda a, ww, bb: F.conv2d(a, ww, bb, stride=1, padding=1), [x, w, b])

    def test_gradcheck_strided(self, rng):
        x = t(rng.normal(size=(1, 2, 6, 6)))
        w = t(rng.normal(size=(2, 2, 3, 3)) * 0.3)
        assert gradcheck(lambda a, ww: F.conv2d(a, ww, stride=2, padding=1), [x, w])

    def test_1x1_conv_is_channel_mix(self, rng):
        x = rng.normal(size=(1, 3, 4, 4))
        w = rng.normal(size=(2, 3, 1, 1))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        ref = np.einsum("nchw,fc->nfhw", x, w[:, :, 0, 0])
        assert np.allclose(out, ref)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.ones((1, 3, 4, 4))), Tensor(np.ones((2, 4, 3, 3))))

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.ones((3, 4, 4))), Tensor(np.ones((2, 3, 3, 3))))

    @given(st.integers(1, 2), st.integers(0, 2))
    def test_output_shape_formula(self, stride, padding):
        x = Tensor(np.zeros((1, 1, 9, 9)))
        w = Tensor(np.zeros((1, 1, 3, 3)))
        out = F.conv2d(x, w, stride=stride, padding=padding)
        expect = (9 + 2 * padding - 3) // stride + 1
        assert out.shape == (1, 1, expect, expect)


class TestConvTranspose2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 2), (2, 1), (2, 0)])
    def test_matches_reference(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 5, 5))
        w = rng.normal(size=(3, 4, 3, 3))
        out = F.conv_transpose2d(Tensor(x), Tensor(w), stride=stride, padding=padding)
        ref = deconv2d_reference(x, w, stride, padding)
        assert np.allclose(out.data, ref, atol=1e-10)

    def test_gradcheck(self, rng):
        x = t(rng.normal(size=(1, 2, 4, 4)))
        w = t(rng.normal(size=(2, 3, 3, 3)) * 0.3)
        b = t(rng.normal(size=3))
        assert gradcheck(
            lambda a, ww, bb: F.conv_transpose2d(a, ww, bb, stride=1, padding=1), [x, w, b]
        )

    def test_gradcheck_strided(self, rng):
        x = t(rng.normal(size=(1, 2, 3, 3)))
        w = t(rng.normal(size=(2, 2, 3, 3)) * 0.3)
        assert gradcheck(lambda a, ww: F.conv_transpose2d(a, ww, stride=2, padding=1), [x, w])

    def test_gradcheck_output_padding(self, rng):
        x = t(rng.normal(size=(1, 1, 3, 3)))
        w = t(rng.normal(size=(1, 2, 3, 3)) * 0.3)
        assert gradcheck(
            lambda a, ww: F.conv_transpose2d(a, ww, stride=2, padding=1, output_padding=1),
            [x, w],
        )

    def test_adjointness_with_conv(self, rng):
        """<conv(x), y> == <x, conv_transpose(y)> — the defining property."""
        x = rng.normal(size=(1, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        y = rng.normal(size=(1, 4, 6, 6))
        cx = F.conv2d(Tensor(x), Tensor(w), padding=1).data
        # conv weight (F, C, k) reinterpreted as transpose weight (F->C).
        cty = F.conv_transpose2d(Tensor(y), Tensor(w), padding=1).data
        assert np.allclose((cx * y).sum(), (x * cty).sum(), rtol=1e-9)

    def test_upsampling_shape(self):
        x = Tensor(np.zeros((1, 1, 8, 8)))
        w = Tensor(np.zeros((1, 1, 4, 4)))
        out = F.conv_transpose2d(x, w, stride=2, padding=1)
        assert out.shape == (1, 1, 16, 16)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv_transpose2d(Tensor(np.ones((1, 3, 4, 4))), Tensor(np.ones((2, 4, 3, 3))))


class TestConv3d:
    def test_matches_separable_construction(self, rng):
        # A 3D conv with a kernel that is an outer product of 1D kernels
        # equals sequential correlation along each axis.
        x = rng.normal(size=(1, 1, 6, 6, 6))
        k1 = rng.normal(size=3)
        kernel = np.einsum("i,j,k->ijk", k1, k1, k1)[None, None]
        out = F.conv3d(Tensor(x), Tensor(kernel), padding=1).data
        from scipy.ndimage import correlate1d

        ref = x[0, 0]
        for axis in range(3):
            ref = correlate1d(ref, k1, axis=axis, mode="constant")
        assert np.allclose(out[0, 0], ref, atol=1e-9)

    def test_gradcheck(self, rng):
        x = t(rng.normal(size=(1, 1, 4, 4, 4)))
        w = t(rng.normal(size=(2, 1, 3, 3, 3)) * 0.3)
        assert gradcheck(lambda a, ww: F.conv3d(a, ww, padding=1), [x, w])

    def test_transpose3d_gradcheck(self, rng):
        x = t(rng.normal(size=(1, 2, 3, 3, 3)))
        w = t(rng.normal(size=(2, 1, 2, 2, 2)) * 0.3)
        assert gradcheck(lambda a, ww: F.conv_transpose3d(a, ww, stride=2), [x, w])

    def test_3d_output_shape(self):
        x = Tensor(np.zeros((2, 3, 8, 8, 8)))
        w = Tensor(np.zeros((5, 3, 3, 3, 3)))
        assert F.conv3d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4, 4)
