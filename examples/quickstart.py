#!/usr/bin/env python3
"""Quickstart: the full ComputeCOVID19+ workflow on one synthetic scan.

Mirrors Fig. 4 end to end at CPU-friendly scale:

1. generate a synthetic COVID-positive chest CT volume,
2. degrade it to a low-dose acquisition,
3. train Enhancement AI (DDnet) on matched low/full-dose slice pairs,
4. train Classification AI (3D DenseNet) on labeled phantom volumes,
5. diagnose the scan with and without the Enhancement stage.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.ct.hounsfield import normalize_unit
from repro.data import chest_volume, make_classification_volumes
from repro.data.datasets import (
    ClassificationDataset,
    EnhancementDataset,
    add_lowdose_noise_hu,
)
from repro.data.phantom import ChestPhantomConfig, chest_slice
from repro.models import DDnet, DenseNet3D
from repro.pipeline import (
    ClassificationAI,
    ComputeCovid19Plus,
    EnhancementAI,
    SegmentationAI,
)

SIZE, SLICES, NOISE_HU = 32, 16, 100.0


def build_enhancement_ai() -> EnhancementAI:
    """Train DDnet on low/full-dose slice pairs (image-space noise)."""
    print("Training Enhancement AI (DDnet)...")
    n = 20
    lows = np.empty((n, 1, SIZE, SIZE))
    fulls = np.empty_like(lows)
    prng = np.random.default_rng(5)
    for i in range(n):
        img = chest_slice(ChestPhantomConfig(size=SIZE, vessel_count=8),
                          np.random.default_rng(prng.integers(2**31)))
        noisy = add_lowdose_noise_hu(img[None], NOISE_HU,
                                     np.random.default_rng(prng.integers(2**31)))[0]
        fulls[i, 0] = normalize_unit(img)
        lows[i, 0] = normalize_unit(noisy)
    ddnet = DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                  dense_kernel=3, deconv_kernel=3, init_std=0.01,
                  rng=np.random.default_rng(0))
    ai = EnhancementAI(model=ddnet, lr=2e-3, msssim_levels=1, msssim_window=5)
    history = ai.train(EnhancementDataset(lows, fulls), epochs=12, batch_size=2)
    print(f"  Eq.1 loss: {history.train_loss[0]:.5f} -> {history.train_loss[-1]:.5f}")
    return ai


def build_classification_ai(segmentation: SegmentationAI) -> ClassificationAI:
    """Train the 3D DenseNet on segmented labeled volumes."""
    print("Training Classification AI (3D DenseNet)...")
    vols, labels = make_classification_volumes(10, 10, size=SIZE, num_slices=SLICES,
                                               rng=np.random.default_rng(7))
    segmented = np.stack([segmentation.apply(v[0])[0] for v in vols])[:, None]
    net = DenseNet3D(block_layers=(1, 1, 1, 1), growth=4, init_features=4,
                     rng=np.random.default_rng(0))
    ai = ClassificationAI(model=net, lr=3e-3)
    history = ai.train(ClassificationDataset(segmented, labels), epochs=10, batch_size=4)
    print(f"  BCE loss: {history.train_loss[0]:.4f} -> {history.train_loss[-1]:.4f}")
    return ai


def main():
    segmentation = SegmentationAI()
    enhancement = build_enhancement_ai()
    classification = build_classification_ai(segmentation)

    # A new COVID-positive patient scan, acquired at low dose.
    patient = chest_volume(SIZE, SLICES, covid=True, rng=np.random.default_rng(1234))
    low_dose = add_lowdose_noise_hu(patient, NOISE_HU, np.random.default_rng(99))

    framework = ComputeCovid19Plus(
        enhancement=enhancement, segmentation=segmentation,
        classification=classification, threshold=0.5, use_enhancement=True,
    )
    baseline = ComputeCovid19Plus(
        segmentation=segmentation, classification=classification,
        threshold=0.5, use_enhancement=False,
    )

    print("\nDiagnosing a low-dose COVID-positive scan:")
    res_base = baseline.diagnose(low_dose)
    res_full = framework.diagnose(low_dose)
    print(f"  without Enhancement AI: P(COVID-19) = {res_base.probability:.3f} -> {res_base.label}")
    print(f"  with    Enhancement AI: P(COVID-19) = {res_full.probability:.3f} -> {res_full.label}")
    print(f"  lung mask covers {res_full.lung_mask.mean() * 100:.1f}% of the volume")
    print("\nDone. See benchmarks/ for the full paper-table reproductions.")


if __name__ == "__main__":
    main()
