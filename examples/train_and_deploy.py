#!/usr/bin/env python3
"""Train, calibrate, persist, and re-deploy the full framework.

The deployment story §7 sketches for clinicians: train once, save the
weights, load them at the scanner, diagnose in minutes on a CPU.

1. train Enhancement AI and Classification AI,
2. calibrate the decision threshold on a validation set (the paper's
   0.061 procedure),
3. ``framework.save(prefix)`` → three .npz artifacts,
4. reload into a *fresh* framework and verify identical decisions,
5. evaluate on held-out scans with the §5.2 protocol.

Run:  python examples/train_and_deploy.py
"""

import os
import tempfile

import numpy as np

from repro.ct.hounsfield import normalize_unit
from repro.data import make_classification_volumes
from repro.data.datasets import (
    ClassificationDataset,
    EnhancementDataset,
    add_lowdose_noise_hu,
)
from repro.data.phantom import ChestPhantomConfig, chest_slice
from repro.models import DDnet, DenseNet3D
from repro.pipeline import (
    ClassificationAI,
    ComputeCovid19Plus,
    EnhancementAI,
    SegmentationAI,
    evaluate_framework,
)

SIZE, SLICES, NOISE = 32, 16, 100.0


def build_trained_framework() -> ComputeCovid19Plus:
    seg = SegmentationAI()
    print("Training Classification AI...")
    vols, labels = make_classification_volumes(18, 18, size=SIZE, num_slices=SLICES,
                                               rng=np.random.default_rng(7))
    segmented = np.stack([seg.apply(v[0])[0] for v in vols])[:, None]
    cls = ClassificationAI(
        model=DenseNet3D(block_layers=(1, 1, 1, 1), growth=4, init_features=4,
                         rng=np.random.default_rng(0)), lr=3e-3)
    cls.train(ClassificationDataset(segmented, labels), epochs=12, batch_size=4)

    print("Training Enhancement AI...")
    n = 16
    lows, fulls = np.empty((n, 1, SIZE, SIZE)), np.empty((n, 1, SIZE, SIZE))
    prng = np.random.default_rng(5)
    for i in range(n):
        img = chest_slice(ChestPhantomConfig(size=SIZE, vessel_count=8),
                          np.random.default_rng(prng.integers(2**31)))
        deg = add_lowdose_noise_hu(img[None], NOISE,
                                   np.random.default_rng(prng.integers(2**31)))[0]
        fulls[i, 0], lows[i, 0] = normalize_unit(img), normalize_unit(deg)
    enh = EnhancementAI(
        model=DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                    dense_kernel=3, deconv_kernel=3, init_std=0.01,
                    rng=np.random.default_rng(0)),
        lr=2e-3, msssim_levels=1, msssim_window=5)
    enh.train(EnhancementDataset(lows, fulls), epochs=12, batch_size=2)
    return ComputeCovid19Plus(enhancement=enh, segmentation=seg, classification=cls)


def main():
    framework = build_trained_framework()

    print("Calibrating the decision threshold on a validation set...")
    val_vols, val_labels = make_classification_volumes(6, 6, size=SIZE,
                                                       num_slices=SLICES,
                                                       rng=np.random.default_rng(50))
    threshold = framework.calibrate_threshold([v[0] for v in val_vols], val_labels)
    print(f"  operating point: {threshold:.3f} (paper's procedure found 0.061)")

    with tempfile.TemporaryDirectory() as tmp:
        prefix = os.path.join(tmp, "computecovid19plus")
        framework.save(prefix)
        artifacts = [f for f in os.listdir(tmp)]
        print(f"Saved deployment artifacts: {artifacts}")

        print("Reloading into a fresh framework (as the scanner would)...")
        fresh = build_untrained_like(framework)
        fresh.load(prefix)
        scan = make_classification_volumes(1, 0, size=SIZE, num_slices=SLICES,
                                           rng=np.random.default_rng(77))[0][0, 0]
        a = framework.diagnose(scan).probability
        b = fresh.diagnose(scan).probability
        print(f"  original P={a:.6f}  reloaded P={b:.6f}  identical={a == b}")

    print("\nEvaluating on held-out *low-dose* scans (the deployment scenario)...")
    test_vols, test_labels = make_classification_volumes(8, 8, size=SIZE,
                                                         num_slices=SLICES,
                                                         rng=np.random.default_rng(99))
    low_dose = [add_lowdose_noise_hu(v[0], NOISE, np.random.default_rng(500 + i))
                for i, v in enumerate(test_vols)]
    report = evaluate_framework(framework, low_dose, test_labels)
    print("  " + report.summary())
    print("\n" + report.confusion.as_table())


def build_untrained_like(reference: ComputeCovid19Plus) -> ComputeCovid19Plus:
    """A framework with the same architectures but fresh weights."""
    return ComputeCovid19Plus(
        enhancement=EnhancementAI(
            model=DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                        dense_kernel=3, deconv_kernel=3,
                        rng=np.random.default_rng(123)),
            msssim_levels=1, msssim_window=5),
        segmentation=SegmentationAI(),
        classification=ClassificationAI(
            model=DenseNet3D(block_layers=(1, 1, 1, 1), growth=4, init_features=4,
                             rng=np.random.default_rng(123))),
    )


if __name__ == "__main__":
    main()
