#!/usr/bin/env python3
"""Low-dose CT simulation and DDnet enhancement (paper §3.1.2 / Fig. 8 / Fig. 12).

Walks the complete physics chain on a chest phantom:

1. Siddon forward projection at the paper's fan-beam geometry,
2. Beer's-law Poisson noise at decreasing dose (blank-scan photons),
3. FBP reconstruction (full-dose and low-dose),
4. DDnet training on the resulting pairs and enhancement of a test slice,

printing image-quality metrics at every dose level.

Run:  python examples/low_dose_ct.py
"""

import numpy as np

from repro.ct import hu_to_mu, mu_to_hu, paper_geometry, simulate_low_dose_pair
from repro.data import make_enhancement_pairs
from repro.data.datasets import EnhancementDataset
from repro.data.phantom import ChestPhantomConfig, chest_slice
from repro.metrics import mse, psnr, ssim
from repro.models import DDnet
from repro.pipeline import EnhancementAI
from repro.report import format_table

SIZE = 48


def dose_sweep():
    """Fig. 8: reconstruct one slice at several dose levels."""
    print("Dose sweep (Siddon forward projection -> Poisson -> fan-beam FBP)")
    img_hu = chest_slice(ChestPhantomConfig(size=SIZE), np.random.default_rng(3))
    mu = hu_to_mu(img_hu)
    geometry = paper_geometry(scale=SIZE / 512.0)
    print(f"  geometry: SDD 1500mm, SOD 1000mm, {geometry.num_views} views, "
          f"{geometry.num_detectors} detector pixels")
    rows = []
    for blank in (1e6, 1e4, 1e3, 200.0):
        full_mu, low_mu, _ = simulate_low_dose_pair(
            mu, geometry, blank_scan=blank, pixel_size=350.0 / SIZE,
            rng=np.random.default_rng(int(blank)),
        )
        low_hu = mu_to_hu(low_mu)
        full_hu = mu_to_hu(full_mu)
        unit = lambda a: np.clip((a + 1400) / 1600, 0, 1)
        rows.append({
            "Blank scan (photons/ray)": f"{blank:g}",
            "Noise vs full dose (HU std)": f"{(low_hu - full_hu).std():.1f}",
            "SSIM vs truth": f"{ssim(unit(low_hu), unit(img_hu), window_size=7):.3f}",
            "PSNR vs truth (dB)": f"{psnr(unit(low_hu), unit(img_hu)):.1f}",
        })
    print(format_table(rows))
    print("  (The paper uses b=1e6; lower photon counts = lower dose = more noise.)\n")


def enhance_low_dose():
    """Fig. 12: train DDnet on physics pairs and enhance held-out slices."""
    print("Training DDnet on physics-generated low/full-dose pairs...")
    rng = np.random.default_rng(42)
    lows, fulls = make_enhancement_pairs(22, size=32, blank_scan=60.0, rng=rng)
    ddnet = DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                  dense_kernel=3, deconv_kernel=3, init_std=0.01,
                  rng=np.random.default_rng(0))
    ai = EnhancementAI(model=ddnet, lr=2e-3, msssim_levels=1, msssim_window=5)
    ai.train(EnhancementDataset(lows[:18], fulls[:18]), epochs=15, batch_size=2)

    enhanced = ai.enhance_batch(lows[18:])
    rows = []
    for i in range(len(enhanced)):
        truth, low, enh = fulls[18 + i, 0], lows[18 + i, 0], enhanced[i, 0]
        rows.append({
            "Test slice": i,
            "MSE(Y,X) low": f"{mse(truth, low):.5f}",
            "MSE(Y,f(X)) enhanced": f"{mse(truth, enh):.5f}",
            "SSIM low": f"{ssim(truth, low, window_size=7):.3f}",
            "SSIM enhanced": f"{ssim(truth, enh, window_size=7):.3f}",
        })
    print(format_table(rows, title="DDnet enhancement on held-out slices (Table 8 / Fig. 12)"))


if __name__ == "__main__":
    dose_sweep()
    enhance_low_dose()
