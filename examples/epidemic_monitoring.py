#!/usr/bin/env python3
"""Variant-wave monitoring (paper Fig. 2 + the testing-capacity argument).

Simulates the UK Delta scenario, plots cases per million, and converts
the epidemic curve into CT-based testing demand using the paper's
turnaround numbers (ComputeCOVID19+ ≈ 5 minutes vs RT-PCR ≈ 4 hours +
multi-day turnaround).

Run:  python examples/epidemic_monitoring.py
"""

import numpy as np

from repro.epi import uk_delta_wave_scenario
from repro.report import ascii_plot, format_table


def main():
    model = uk_delta_wave_scenario()
    out = model.run(240)
    cases = out["cases_per_million"]
    delta = out["variant_share:Delta"]

    print(ascii_plot(
        {"cases/million/day": np.maximum(cases, 0.5)},
        width=72, height=14, logy=True,
        title="Fig. 2 (simulated) — UK-style Delta 4th wave",
    ))
    print(f"Delta share at day 240: {delta[-1] * 100:.1f}%  (paper: 98% by 14 Jun 2021)\n")

    # Testing throughput: scanners needed to keep up with the wave.
    population = 67e6
    peak_daily_cases = cases.max() * population / 1e6
    tests_per_case = 8  # contacts + monitoring scans per confirmed case
    ct_minutes_per_test = 15 + 5      # scan time + ComputeCOVID19+ inference
    pcr_hours_per_test = 4.0

    rows = [{
        "Method": "ComputeCOVID19+ (CT)",
        "Per-test time": f"{ct_minutes_per_test} min",
        "Daily tests/scanner": int(16 * 60 / ct_minutes_per_test),
        "Scanners for peak demand": int(np.ceil(
            peak_daily_cases * tests_per_case / (16 * 60 / ct_minutes_per_test)
        )),
        "Result latency": "minutes",
    }, {
        "Method": "RT-PCR",
        "Per-test time": f"{pcr_hours_per_test:.0f} h lab time",
        "Daily tests/scanner": "-",
        "Scanners for peak demand": "-",
        "Result latency": "days (transport + batching)",
    }]
    print(format_table(rows, title=f"Peak demand: {peak_daily_cases:,.0f} cases/day "
                                   f"x {tests_per_case} tests/case"))
    print("\nThe paper's argument: CT scanners are already deployed; adding "
          "ComputeCOVID19+ turns each into a minutes-latency COVID test "
          "with 91% sensitivity (vs RT-PCR's 67%).")


if __name__ == "__main__":
    main()
