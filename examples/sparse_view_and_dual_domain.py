#!/usr/bin/env python3
"""Sparse-view CT and dual-domain enhancement (extensions).

Two experiments beyond the paper's evaluation, implementing its §6.3
related-work comparators and §7 future work:

1. **Sparse-view**: reconstruct from 1/8 of the projections with FBP,
   iterative SART, and FBP + DDnet (DDnet's original TMI'18 use case).
2. **Dual-domain**: denoise the *sinogram* with a projection-domain
   network before FBP, then apply image-domain DDnet — the paper's
   stated next step.

Run:  python examples/sparse_view_and_dual_domain.py
"""

import numpy as np

from repro.ct import (
    fbp_reconstruct,
    forward_project,
    hu_to_mu,
    mu_to_hu,
    paper_geometry,
    sart_reconstruct,
    subsample_views,
)
from repro.ct.geometry import ParallelBeamGeometry
from repro.ct.hounsfield import normalize_unit
from repro.data.datasets import EnhancementDataset
from repro.data.phantom import ChestPhantomConfig, chest_slice
from repro.metrics import mse, ssim
from repro.models import DDnet
from repro.pipeline import EnhancementAI, SinogramDenoiser, make_sinogram_pairs
from repro.report import format_table

SIZE = 32


def tiny_ddnet(seed=0):
    return DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                 dense_kernel=3, deconv_kernel=3, init_std=0.01,
                 rng=np.random.default_rng(seed))


def unit(mu_img):
    return normalize_unit(mu_to_hu(mu_img))


def sparse_view_demo():
    print("=== Sparse-view reconstruction (12 of 96 views) ===")
    full = ParallelBeamGeometry(num_views=96, num_detectors=65)
    sparse = subsample_views(full, 8)
    images = [hu_to_mu(chest_slice(ChestPhantomConfig(size=SIZE),
                                   np.random.default_rng(i))) for i in range(14)]
    truth = [unit(fbp_reconstruct(forward_project(m, full), full, SIZE)) for m in images]
    streaky = [unit(fbp_reconstruct(forward_project(m, sparse), sparse, SIZE))
               for m in images]
    sart = [unit(sart_reconstruct(forward_project(m, sparse), sparse, SIZE,
                                  iterations=8, relaxation=0.6)) for m in images[-2:]]

    ai = EnhancementAI(model=tiny_ddnet(), lr=2e-3, msssim_levels=1, msssim_window=5)
    ai.train(EnhancementDataset(np.stack(streaky[:12])[:, None],
                                np.stack(truth[:12])[:, None]),
             epochs=15, batch_size=2)
    rows = []
    for i, full_idx in enumerate(range(12, 14)):
        enhanced = ai.enhance_slice(streaky[full_idx])
        rows.append({
            "Slice": i,
            "FBP sparse SSIM": f"{ssim(streaky[full_idx], truth[full_idx], window_size=7):.3f}",
            "SART SSIM": f"{ssim(sart[i], truth[full_idx], window_size=7):.3f}",
            "FBP+DDnet SSIM": f"{ssim(enhanced, truth[full_idx], window_size=7):.3f}",
        })
    print(format_table(rows))
    print()


def dual_domain_demo():
    print("=== Dual-domain (projection + image) enhancement (§7) ===")
    geo = paper_geometry(scale=SIZE / 512)
    px = 350.0 / SIZE
    images = [hu_to_mu(chest_slice(ChestPhantomConfig(size=SIZE),
                                   np.random.default_rng(i))) for i in range(14)]
    noisy, clean = make_sinogram_pairs(images, geo, blank_scan=400.0,
                                       pixel_size=px, rng=np.random.default_rng(0))
    denoiser = SinogramDenoiser(base=6, depth=2, lr=5e-3, rng=np.random.default_rng(1))
    denoiser.train(noisy[:12], clean[:12], epochs=25)
    rows = []
    for i in (12, 13):
        truth = unit(fbp_reconstruct(clean[i], geo, SIZE, px, "hann"))
        raw = unit(fbp_reconstruct(noisy[i], geo, SIZE, px, "hann"))
        den = unit(fbp_reconstruct(denoiser.denoise(noisy[i]), geo, SIZE, px, "hann"))
        rows.append({
            "Slice": i,
            "MSE noisy FBP": f"{mse(raw, truth):.5f}",
            "MSE denoised-sinogram FBP": f"{mse(den, truth):.5f}",
        })
    print(format_table(rows))
    print("\n(The projection-domain stage alone already improves the image; "
          "stacking image-domain DDnet on top gives the full §7 chain — see "
          "benchmarks/bench_ablation_dual_domain.py.)")


if __name__ == "__main__":
    sparse_view_demo()
    dual_domain_demo()
