#!/usr/bin/env python3
"""Paper-width DDnet inference: measured NumPy vs modelled OpenCL.

Runs the *full-width* DDnet (base 16 channels, growth 16, 4 dense
blocks, 5×5 kernels — exactly Table 2, 717k parameters) on a real
chest slice at 128×128, through the instrumented kernel layer with an
OpenCL-style command queue, then:

- verifies the kernel schedule matches the paper's 37 + 8 layer count,
- compares this machine's measured wall-clock against the calibrated
  model's predictions for the six Table 4 platforms at the same
  workload,
- extrapolates to the paper's 512×512×32 reference chunk.

Run:  python examples/paper_scale_inference.py   (~10-20 s)
"""

import time

import numpy as np

from repro.ct.hounsfield import normalize_unit
from repro.data.phantom import ChestPhantomConfig, chest_slice
from repro.hetero import (
    DEVICES,
    INTEL_XEON_6128,
    InferenceEngine,
    PerfModel,
    ddnet_kernel_schedule,
    schedule_totals,
)
from repro.models import DDnet
from repro.report import format_table

SIZE = 128


def main():
    print(f"Building the full Table 2 DDnet (base 16, growth 16, 4 blocks)...")
    net = DDnet(rng=np.random.default_rng(0)).eval()
    convs, deconvs = net.conv_layer_count()
    print(f"  {convs} convolution + {deconvs} deconvolution layers, "
          f"{net.num_parameters():,} parameters")

    image = normalize_unit(chest_slice(ChestPhantomConfig(size=SIZE),
                                       np.random.default_rng(1)))[None, None]
    perf = PerfModel()
    engine = InferenceEngine(net, INTEL_XEON_6128, perf_model=perf)

    print(f"\nExecuting one {SIZE}x{SIZE} slice through the instrumented kernels...")
    t0 = time.perf_counter()
    out, trace, queue = engine.run_with_queue(image)
    wall = time.perf_counter() - t0
    counts = trace.group_counts()
    gflop = (counts["convolution"].flops + counts["deconvolution"].flops) / 1e9
    print(f"  output shape {out.shape}, {len(trace.launches)} kernel launches, "
          f"{gflop:.1f} GFLOP")
    print(f"  measured NumPy wall-clock: {wall:.2f}s "
          f"({gflop / wall:.1f} GFLOP/s on this interpreter)")
    by_group = queue.kernel_time_by_prefix()
    print(f"  modelled Xeon OpenCL time for the same schedule: "
          f"{queue.profile()['kernel']:.4f}s "
          f"(conv {by_group.get('convolution', 0):.4f}s, "
          f"deconv {by_group.get('deconvolution', 0):.4f}s)")

    # Model predictions for this workload and for the paper's reference.
    sched_here = ddnet_kernel_schedule(input_size=SIZE, batch=1)
    sched_paper = ddnet_kernel_schedule()  # 512x512, batch 32
    rows = []
    for name, device in DEVICES.items():
        from repro.hetero import OptimizationConfig

        cfg = (OptimizationConfig.fpga_full() if device.device_type == "fpga"
               else OptimizationConfig.ref_pf_lu())
        here = perf.predict(device, cfg, schedule=sched_here).total_s
        paper = perf.predict(device, cfg, schedule=sched_paper).total_s
        rows.append({
            "Platform": name,
            f"{SIZE}x{SIZE}x1 (s)": f"{here:.4f}",
            "512x512x32 (s)": f"{paper:.2f}",
        })
    print()
    print(format_table(rows, title="Modelled OpenCL inference times (Table 4 workload rightmost)"))
    ratio = schedule_totals(sched_paper)["convolution"].flops / \
        schedule_totals(sched_here)["convolution"].flops
    print(f"\nThe paper's reference chunk is {ratio:.0f}x this example's arithmetic.")


if __name__ == "__main__":
    main()
