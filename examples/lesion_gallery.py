#!/usr/bin/env python3
"""Render the Fig. 1 abnormality gallery to viewable PGM images.

Writes one image per COVID-19 radiological hallmark (plus a healthy
reference slice) into ``examples/gallery/`` as plain PGM files, windowed
with the standard lung window.

Run:  python examples/lesion_gallery.py
"""

import os

import numpy as np

from repro.ct.hounsfield import normalize_unit
from repro.data import LESION_TYPES, add_lesion, chest_slice
from repro.data.phantom import ChestPhantomConfig

OUT_DIR = os.path.join(os.path.dirname(__file__), "gallery")
SIZE = 128


def write_pgm(path: str, image_unit: np.ndarray) -> None:
    """Write a [0, 1] image as an 8-bit binary PGM."""
    data = (np.clip(image_unit, 0, 1) * 255).astype(np.uint8)
    with open(path, "wb") as f:
        f.write(f"P5\n{data.shape[1]} {data.shape[0]}\n255\n".encode())
        f.write(data.tobytes())


def main():
    os.makedirs(OUT_DIR, exist_ok=True)
    config = ChestPhantomConfig(size=SIZE)
    healthy, masks = chest_slice(config, np.random.default_rng(0), return_masks=True)
    write_pgm(os.path.join(OUT_DIR, "healthy.pgm"), normalize_unit(healthy))
    print(f"wrote {OUT_DIR}/healthy.pgm")

    for i, kind in enumerate(sorted(LESION_TYPES)):
        rng = np.random.default_rng(100 + i)
        img, m = chest_slice(config, np.random.default_rng(0), return_masks=True)
        lesioned = add_lesion(img, m["lungs"], kind, rng=rng)
        path = os.path.join(OUT_DIR, f"{kind}.pgm")
        write_pgm(path, normalize_unit(lesioned))
        delta = (lesioned - img)
        print(f"wrote {path}  (affected pixels: {(delta > 20).sum()}, "
              f"peak density change: +{delta.max():.0f} HU)")


if __name__ == "__main__":
    main()
