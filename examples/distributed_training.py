#!/usr/bin/env python3
"""Distributed Enhancement AI training (§4.1 / Table 3).

Trains DDnet replicas under the simulated gloo DistributedDataParallel
at several world sizes, verifying replica synchronization and showing
the communication accounting, then prints the calibrated Table 3
wall-clock predictions for the paper's cluster configurations.

Run:  python examples/distributed_training.py
"""

import numpy as np

import repro.nn as nn
from repro.data import make_enhancement_pairs
from repro.distributed import (
    ClusterSpec,
    DistributedDataParallel,
    ProcessGroup,
    TrainingTimeModel,
    paper_table3_rows,
)
from repro.models import DDnet
from repro.report import format_table


def tiny_ddnet():
    return DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                 dense_kernel=3, deconv_kernel=3, init_std=0.01,
                 rng=np.random.default_rng(0))


def main():
    rng = np.random.default_rng(42)
    lows, fulls = make_enhancement_pairs(16, size=32, blank_scan=60.0, rng=rng)
    loss_fn = nn.CompositeLoss(levels=1, window_size=5)

    print("Simulated DDP training (gradient averaging over lockstep ranks):\n")
    rows = []
    for world_size in (1, 2, 4):
        pg = ProcessGroup(world_size)
        ddp = DistributedDataParallel(tiny_ddnet, pg, lambda p: nn.Adam(p, lr=2e-3))
        local = 8 // world_size
        losses = []
        for step in range(6):
            idx = np.arange(8) + (step * 8) % 8
            shards = [(lows[idx[r * local:(r + 1) * local] % 16],
                       fulls[idx[r * local:(r + 1) * local] % 16])
                      for r in range(world_size)]
            losses.append(ddp.train_step(shards, loss_fn))
        rows.append({
            "World size": world_size,
            "Loss first": f"{losses[0]:.5f}",
            "Loss last": f"{losses[-1]:.5f}",
            "Replicas in sync": ddp.replicas_in_sync(),
            "Collectives": pg.stats.collectives,
            "Bytes all-reduced": f"{pg.stats.bytes_moved / 1e6:.1f} MB",
            "Simulated comm time": f"{pg.stats.simulated_time_s:.3f}s",
        })
    print(format_table(rows))

    print("\nTable 3 wall-clock model (calibrated to the paper's T4 cluster):\n")
    rows = [{
        "# Nodes": r["nodes"], "Batch": r["batch"], "Epochs": r["epochs"],
        "Paper runtime": r["paper_runtime"], "Model runtime": r["model_runtime"],
        "Error": f"{r['rel_error'] * 100:+.1f}%",
    } for r in paper_table3_rows()]
    print(format_table(rows))

    model = TrainingTimeModel()
    t1 = model.estimate(ClusterSpec(1), 1, 50)
    t8 = model.estimate(ClusterSpec(8), 32, 50)
    print(f"\nSpeedup 8 nodes/batch 32 vs 1 node/batch 1: "
          f"{t1.total_time_s / t8.total_time_s:.1f}x "
          f"(sub-linear: synchronization + batch-quality trade-off, §5.1.2)")


if __name__ == "__main__":
    main()
