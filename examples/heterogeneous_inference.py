#!/usr/bin/env python3
"""Heterogeneous DDnet inference across the six Table 4 platforms (§4.2).

Runs a real DDnet through the instrumented kernel layer on every device
model, with and without the deconvolution refactoring, and prints:

- per-kernel-group operation counts (the Table 6 methodology),
- modelled runtimes per platform and optimization level,
- the FPGA runtime-reconfiguration plan (Fig. 10).

Run:  python examples/heterogeneous_inference.py
"""

import numpy as np

from repro.data.phantom import ChestPhantomConfig, chest_slice
from repro.ct.hounsfield import normalize_unit
from repro.hetero import (
    DEVICES,
    INTEL_ARRIA10,
    FpgaResourceModel,
    InferenceEngine,
    OptimizationConfig,
    PerfModel,
    ReconfigurationSchedule,
)
from repro.models import DDnet
from repro.report import format_table

SIZE = 32


def main():
    net = DDnet(base_channels=4, growth=4, num_blocks=2, layers_per_block=2,
                dense_kernel=3, deconv_kernel=3, init_std=0.01,
                rng=np.random.default_rng(0)).eval()
    image = normalize_unit(chest_slice(ChestPhantomConfig(size=SIZE),
                                       np.random.default_rng(1)))[None, None]
    perf = PerfModel()

    print(f"Executing DDnet ({SIZE}x{SIZE} slice) through the instrumented kernels...\n")
    rows = []
    reference = None
    for name, device in DEVICES.items():
        engine = InferenceEngine(net, device, OptimizationConfig.ref_pf_lu(), perf)
        out, trace = engine.run(image)
        if reference is None:
            reference = out
        assert np.allclose(out, reference), "outputs must be device-independent"
        counts = trace.group_counts()
        rows.append({
            "Platform": name,
            "Kernel launches": len(trace.launches),
            "Conv GFLOP": f"{counts['convolution'].flops / 1e9:.3f}",
            "Deconv GFLOP": f"{counts['deconvolution'].flops / 1e9:.3f}",
            "Modelled time (ms)": f"{trace.modelled_time_s * 1e3:.2f}",
        })
    print(format_table(rows, title="Functional execution with device-time accounting"))
    print("\nAll platforms produced bit-identical enhanced images "
          "(OpenCL functional portability, §5.1.3).\n")

    # Paper-scale (512x512x32) predictions: Table 4 ladder.
    rows = []
    for name, device in DEVICES.items():
        ladder = {}
        for cfg in OptimizationConfig.table7_ladder():
            ladder[cfg.label] = perf.predict(device, cfg).total_s
        rows.append({"Platform": name,
                     **{k: f"{v:.2f}s" for k, v in ladder.items()}})
    print(format_table(rows, title="Paper-scale (512x512x32) optimization ladder (Table 7)"))

    # Fig. 10: the FPGA reconfiguration decision.
    rm = FpgaResourceModel()
    full = OptimizationConfig.fpga_full()
    pred = perf.predict(INTEL_ARRIA10, full)
    ladder_pred = perf.predict(INTEL_ARRIA10, OptimizationConfig.ref_pf_lu())
    plan = ReconfigurationSchedule.plan(
        pred.convolution_s, pred.deconvolution_s, pred.other_s,
        ladder_pred.total_s, rm, full,
    )
    print(f"\nFPGA: full optimizations fit one bitstream? "
          f"{rm.fits_single_bitstream(full)}")
    print(f"Fig. 10 plan ({plan.num_reconfigurations} reconfiguration(s)): "
          f"{plan.total_time_s:.2f}s vs single-bitstream {ladder_pred.total_s:.2f}s")


if __name__ == "__main__":
    main()
